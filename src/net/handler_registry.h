// The (node, method) → handler table shared by both Transport
// implementations.  The in-process transport dispatches straight out
// of it; the TCP transport's server side looks handlers up here after
// decoding a request frame.  Either way the contract is the same:
//
//   - lookups copy the handler out under the lock and run it outside,
//     so a concurrent KillNode can never free a handler mid-call (the
//     call completes, or a later call returns NotFound);
//   - Register overwrites an existing handler — legitimate for DFS
//     DataNode restart — but the overwrite is counted
//     (bmr_rpc_handler_reregistered_total) and logged once per
//     registry, so an accidental double registration is visible.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/transport.h"

namespace bmr::net {

class HandlerRegistry {
 public:
  HandlerRegistry() = default;
  HandlerRegistry(const HandlerRegistry&) = delete;
  HandlerRegistry& operator=(const HandlerRegistry&) = delete;

  void Register(int node, const std::string& method, RpcHandler handler)
      BMR_EXCLUDES(mu_);

  void Unregister(int node, const std::string& method) BMR_EXCLUDES(mu_);

  /// Remove every handler on `node`.
  void KillNode(int node) BMR_EXCLUDES(mu_);

  /// Copy the handler out (runs-outside-lock discipline).  NotFound
  /// when the method is not registered on `node`.
  [[nodiscard]] Status Lookup(int node, const std::string& method,
                              RpcHandler* handler) const BMR_EXCLUDES(mu_);

  uint64_t reregistrations() const {
    return reregistrations_.load(std::memory_order_relaxed);
  }

 private:
  mutable OrderedMutex mu_{"net.handler_registry"};
  std::map<std::pair<int, std::string>, RpcHandler> handlers_
      BMR_GUARDED_BY(mu_);
  std::atomic<uint64_t> reregistrations_{0};
  bool logged_reregistration_ BMR_GUARDED_BY(mu_) = false;
};

}  // namespace bmr::net
