#include "net/handler_registry.h"

#include "common/logging.h"

namespace bmr::net {

void HandlerRegistry::Register(int node, const std::string& method,
                               RpcHandler handler) {
  MutexLock lock(mu_);
  auto [it, inserted] = handlers_.try_emplace({node, method});
  it->second = std::move(handler);
  if (inserted) return;
  reregistrations_.fetch_add(1, std::memory_order_relaxed);
  if (!logged_reregistration_) {
    logged_reregistration_ = true;
    BMR_INFO << "handler re-registered: " << method << " on node " << node
             << " (expected for DataNode restart; further overwrites are "
                "counted in bmr_rpc_handler_reregistered_total only)";
  }
}

void HandlerRegistry::Unregister(int node, const std::string& method) {
  MutexLock lock(mu_);
  handlers_.erase({node, method});
}

void HandlerRegistry::KillNode(int node) {
  MutexLock lock(mu_);
  auto it = handlers_.lower_bound({node, ""});
  while (it != handlers_.end() && it->first.first == node) {
    it = handlers_.erase(it);
  }
}

Status HandlerRegistry::Lookup(int node, const std::string& method,
                               RpcHandler* handler) const {
  MutexLock lock(mu_);
  auto it = handlers_.find({node, method});
  if (it == handlers_.end()) {
    return Status::NotFound("no handler for " + method + " on node " +
                            std::to_string(node));
  }
  *handler = it->second;
  return Status::Ok();
}

}  // namespace bmr::net
