#include "net/transport.h"

#include "net/inproc_transport.h"
#include "net/tcp_transport.h"

namespace bmr::net {

StatusOr<std::unique_ptr<Transport>> CreateTransport(
    const std::string& kind, int num_nodes, const TransportOptions& options) {
  if (num_nodes <= 0) {
    return Status::InvalidArgument("transport needs at least one node");
  }
  if (kind.empty() || kind == "inproc") {
    return std::unique_ptr<Transport>(
        std::make_unique<InProcessTransport>(num_nodes));
  }
  if (kind == "tcp") {
    auto transport = TcpTransport::Create(num_nodes, options);
    BMR_RETURN_IF_ERROR(transport.status());
    return std::unique_ptr<Transport>(std::move(*transport));
  }
  return Status::InvalidArgument("unknown transport kind '" + kind +
                                 "' (expected inproc or tcp)");
}

}  // namespace bmr::net
