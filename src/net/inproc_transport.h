// The in-process Transport: the original RPC fabric, refactored onto
// the Transport interface.
//
// The paper's Hadoop ran on a 16-node cluster; here the "nodes" are
// logical endpoints inside one process.  Every "remote" fetch is a
// function call in one address space — the same structure as Hadoop
// RPC and the shuffle's HTTP fetches, minus the sockets.  Every call
// is metered (bytes in/out per src→dst pair) so the simulator's cost
// model can be calibrated against real transfer volumes, and the
// absence of sockets keeps simmr calibration and the seeded chaos
// harness fully deterministic.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/handler_registry.h"
#include "net/transport.h"

namespace bmr::net {

/// Handlers run on the caller's thread with no transport lock held.
class InProcessTransport final : public Transport {
 public:
  explicit InProcessTransport(int num_nodes) : num_nodes_(num_nodes) {}

  int num_nodes() const override { return num_nodes_; }

  void Register(int node, const std::string& method,
                RpcHandler handler) override {
    registry_.Register(node, method, std::move(handler));
  }

  void Unregister(int node, const std::string& method) override {
    registry_.Unregister(node, method);
  }

  void KillNode(int node) override { registry_.KillNode(node); }

  [[nodiscard]] Status Call(int src, int dst, const std::string& method,
                            Slice request, ByteBuffer* response) override
      BMR_EXCLUDES(mu_);

  LinkStats GetLinkStats(int src, int dst) const override BMR_EXCLUDES(mu_);
  LinkStats TotalRemoteTraffic() const override BMR_EXCLUDES(mu_);

  uint64_t handler_reregistrations() const override {
    return registry_.reregistrations();
  }

  void SetFaultInjector(faults::FaultInjector* injector) override
      BMR_EXCLUDES(mu_);

  void SetObserver(obs::Tracer* tracer) override {
    observer_.store(tracer, std::memory_order_release);
  }

 private:
  int num_nodes_;
  HandlerRegistry registry_;
  mutable OrderedMutex mu_{"net.inproc_transport"};
  std::map<std::pair<int, int>, LinkStats> link_stats_ BMR_GUARDED_BY(mu_);
  faults::FaultInjector* injector_ BMR_GUARDED_BY(mu_) = nullptr;
  // Atomic, not guarded: read on every Call; installed/cleared at job
  // boundaries with no concurrent traced calls in flight.
  std::atomic<obs::Tracer*> observer_{nullptr};
};

}  // namespace bmr::net
