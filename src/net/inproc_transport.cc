#include "net/inproc_transport.h"

#include "faults/fault_injector.h"
#include "obs/metric_names.h"
#include "obs/trace.h"

namespace bmr::net {

Status InProcessTransport::Call(int src, int dst, const std::string& method,
                                Slice request, ByteBuffer* response) {
  obs::Tracer* observer = observer_.load(std::memory_order_acquire);
  obs::LatencyTimer timer(observer, obs::kHRpcCallInprocUs);
  // Fault hook first, before the handler lookup: a crash it triggers
  // removes dst's handlers, so this very call already observes the
  // node as dead; a drop fails the call without touching the handler.
  int duplicates = 0;
  {
    faults::FaultInjector* injector;
    {
      MutexLock lock(mu_);
      injector = injector_;
    }
    if (injector != nullptr) {
      BMR_RETURN_IF_ERROR(injector->OnRpcCall(src, dst, method, &duplicates));
    }
  }
  RpcHandler handler;
  BMR_RETURN_IF_ERROR(registry_.Lookup(dst, method, &handler));
  response->Clear();
  Status st;
  {
    // Same wire semantics as the TCP path (GUIDE §15): build the trace
    // context a frame would carry, open the handler span under its
    // propagated parent.  The handler runs on the caller's thread here,
    // so the context round-trips through the same API the decoder uses.
    obs::TraceContext trace_ctx =
        observer != nullptr ? observer->CurrentContext() : obs::TraceContext{};
    obs::ScopedSpan handler_span(
        observer, obs::kSpanRpcHandler, "rpc", dst,
        observer != nullptr ? observer->PropagatedParent(trace_ctx) : 0);
    st = handler(request, response);
    // At-least-once delivery: rerun the handler, keeping the last
    // response.  Plans schedule duplicates only on idempotent reads.
    for (; duplicates > 0 && st.ok(); --duplicates) {
      response->Clear();
      st = handler(request, response);
    }
  }
  {
    MutexLock lock(mu_);
    LinkStats& ls = link_stats_[{src, dst}];
    ls.calls++;
    ls.request_bytes += request.size();
    ls.response_bytes += response->size();
  }
  return st;
}

void InProcessTransport::SetFaultInjector(faults::FaultInjector* injector) {
  MutexLock lock(mu_);
  injector_ = injector;
}

LinkStats InProcessTransport::GetLinkStats(int src, int dst) const {
  MutexLock lock(mu_);
  auto it = link_stats_.find({src, dst});
  return it == link_stats_.end() ? LinkStats{} : it->second;
}

LinkStats InProcessTransport::TotalRemoteTraffic() const {
  MutexLock lock(mu_);
  LinkStats total;
  for (const auto& [key, ls] : link_stats_) {
    if (key.first == key.second) continue;
    total.calls += ls.calls;
    total.request_bytes += ls.request_bytes;
    total.response_bytes += ls.response_bytes;
  }
  return total;
}

}  // namespace bmr::net
