// The node-to-node transport abstraction of the execution engine.
//
// Everything above src/net/ — the shuffle fetchers, the DFS client
// stubs, the engine wiring — speaks to this interface only (enforced
// by scripts/lint.sh check 8): services register handlers under
// (node, "Service.Method") and clients issue blocking calls with
// serialized request/response payloads.  Two implementations exist:
//
//   InProcessTransport (inproc_transport.h)
//       the original in-process registry.  Every "remote" fetch is a
//       function call in one address space, which keeps simmr cost
//       calibration and the seeded chaos harness fully deterministic.
//
//   TcpTransport (tcp_transport.h)
//       a real TCP/epoll event loop: one multiplexed loopback
//       connection per node pair, length-prefixed checksummed frames
//       with request ids (net/framing.h), connect/call timeouts with
//       capped exponential retry, and exactly-once replay semantics
//       via a bounded ResponseKeeper (net/response_keeper.h).
//
// The payoff gate of the split: the chaos equivalence sweep and the
// multijob tests pass byte-identical on both implementations, so every
// layer above net/ is provably transport-agnostic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace bmr::faults {
class FaultInjector;
}  // namespace bmr::faults

namespace bmr::obs {
class Tracer;
}  // namespace bmr::obs

namespace bmr::net {

using RpcHandler =
    std::function<Status(Slice request, ByteBuffer* response)>;

/// Byte/call counters for one directed node pair.  `calls` counts wire
/// sends: on the TCP transport an injected duplicate or a timed-out
/// resend is its own wire send and counts once per frame written; on
/// the in-process transport one Call is one (virtual) wire send.
struct LinkStats {
  uint64_t calls = 0;
  uint64_t request_bytes = 0;
  uint64_t response_bytes = 0;
};

/// Node-to-node RPC + framed segment transfer.  Thread-safe.  All
/// implementations share the contract the engine's recovery logic is
/// built on:
///   - Register overwrites an existing handler (DFS restart), bumping
///     the re-registration counter and logging once per transport.
///   - Call returns NotFound when the method is not registered on the
///     destination (e.g. the node is down) and Unavailable on injected
///     drops or exhausted transport-level retries.
///   - KillNode removes every handler on the node; a Call racing the
///     kill either completes normally or returns NotFound, never
///     crashes (the handler is copied out before dispatch).
class Transport {
 public:
  virtual ~Transport() = default;

  virtual int num_nodes() const = 0;

  /// Register a handler for `method` on `node`.  Overwrites on
  /// re-registration (the DFS re-registers DataNode services on
  /// restart after a failure) — counted, not silent.
  virtual void Register(int node, const std::string& method,
                        RpcHandler handler) = 0;

  /// Remove one handler (job teardown: shuffle services are job-scoped
  /// so concurrent jobs on a shared transport don't clobber each
  /// other).
  virtual void Unregister(int node, const std::string& method) = 0;

  /// Remove every handler on `node` (simulated machine loss).  Node
  /// death is modeled at the handler-registry layer on both
  /// implementations: on TCP the wire stays up and the dead node
  /// answers NotFound, exactly like the in-process registry.
  virtual void KillNode(int node) = 0;

  /// Issue a blocking call from `src` to `dst`.  The handler runs with
  /// no transport lock held, so handlers may issue nested Calls
  /// freely.
  [[nodiscard]] virtual Status Call(int src, int dst,
                                    const std::string& method, Slice request,
                                    ByteBuffer* response) = 0;

  /// Accumulated counters for the src→dst direction.
  virtual LinkStats GetLinkStats(int src, int dst) const = 0;

  /// Sum of counters over all pairs where src != dst (remote traffic).
  virtual LinkStats TotalRemoteTraffic() const = 0;

  /// Times Register overwrote a live handler (the
  /// bmr_rpc_handler_reregistered_total series) — an accidental double
  /// registration is no longer invisible.
  virtual uint64_t handler_reregistrations() const = 0;

  /// Install (or clear, with nullptr) a fault injector.  Every Call
  /// consults it at the wire-send boundary, before any bytes move (and
  /// before the handler lookup on the in-process path), so an injected
  /// node crash takes effect on the very call that triggered it, a
  /// drop fails the call without a wire send, and a duplicate sends a
  /// real extra frame on the TCP path.  Not owned.
  virtual void SetFaultInjector(faults::FaultInjector* injector) = 0;

  /// Install (or clear, with nullptr) a tracing observer: every Call
  /// records its end-to-end latency (handler included) into the
  /// per-transport bmr_rpc_call_us series.  One observer at a time —
  /// the traced job installs it for the run and clears it at the end.
  /// Not owned.
  virtual void SetObserver(obs::Tracer* tracer) = 0;
};

/// Transport selection + TCP tuning.  The engine fills this from the
/// cluster spec's `transport` knob (itself defaulted from the
/// BMR_NET_TRANSPORT environment variable).
struct TransportOptions {
  /// Handshake budget for one loopback connect.
  double connect_timeout_ms = 1000;
  /// One request's response wait before the call is retried with the
  /// same request id (the ResponseKeeper dedups re-executions).
  double call_timeout_ms = 2000;
  /// Resends of one call after the first, with capped exponential
  /// backoff between attempts.
  int max_call_retries = 3;
  double retry_backoff_ms = 1.0;
  double retry_backoff_max_ms = 50.0;
  /// Responses the TCP server keeps for replaying retried request ids
  /// (bounds exactly-once memory; an evicted id re-executes).
  size_t response_keeper_entries = 1024;
};

/// "inproc" or "tcp"; InvalidArgument on anything else.
[[nodiscard]] StatusOr<std::unique_ptr<Transport>> CreateTransport(
    const std::string& kind, int num_nodes,
    const TransportOptions& options = {});

}  // namespace bmr::net
