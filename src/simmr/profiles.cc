#include "simmr/profiles.h"

#include <cmath>

namespace bmr::simmr {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
}

SimJob WordCountSim(double input_gb, int num_reducers) {
  SimJob job;
  job.app = "wordcount";
  job.input_bytes = input_gb * kGiB;
  // ~61-byte lines of 10 words.
  job.map_input_records = static_cast<uint64_t>(job.input_bytes / 61);
  job.map_output_records = job.map_input_records * 10;
  // word + serialized count + framing ~ 12 B per intermediate record.
  job.map_output_bytes = static_cast<double>(job.map_output_records) * 12;
  // Raw-text vocabulary grows with corpus size (typos, numbers,
  // markup): ~4M distinct tokens per GB, capped at 80M.
  job.distinct_keys = static_cast<uint64_t>(
      std::min(8e7, 4.2e6 * std::max(input_gb, 0.05)));
  job.output_bytes = static_cast<double>(job.distinct_keys) * 16;
  job.num_reducers = num_reducers;

  job.map_cost_per_record = 45e-6;       // tokenize + 10 emits per line
  job.map_sort_cost_per_record = 2.2e-6;
  job.merge_cost_per_record = 1.0e-6;
  job.reduce_cost_per_record = 0.6e-6;   // += per value
  job.incremental_cost_per_record = 1.8e-6;  // treemap get/put + add
  job.finalize_cost_per_key = 0.8e-6;
  job.mem_class = MemClass::kKeys;
  // JVM-era accounting: Text key + boxed IntWritable + TreeMap.Entry +
  // object headers — the paper's Fig. 5 heap curves imply hundreds of
  // bytes per retained entry.
  job.partial_entry_bytes = 350;
  return job;
}

SimJob SortSim(double input_gb, int num_reducers) {
  SimJob job;
  job.app = "sort";
  job.input_bytes = input_gb * kGiB;
  job.map_input_records = static_cast<uint64_t>(job.input_bytes / 8);
  job.map_output_records = job.map_input_records;
  job.map_output_bytes = static_cast<double>(job.map_output_records) * 12;
  // Values drawn from [0, 1e6]: key space saturates quickly, but the
  // duplicate-count partials still grow to the full key space.
  job.distinct_keys = 1000001;
  job.output_bytes = job.map_output_bytes;
  job.num_reducers = num_reducers;

  job.map_cost_per_record = 1.6e-6;      // parse + emit, no user code
  job.map_sort_cost_per_record = 1.4e-6;
  job.merge_cost_per_record = 1.1e-6;    // the framework merge sort
  job.reduce_cost_per_record = 0.25e-6;  // identity write-through
  // The degenerate case (§6.1.1): every record pays a red-black tree
  // insertion, slower than the streaming merge it replaces.  The fold
  // becomes the reducer's critical path and the barrier version wins.
  job.incremental_cost_per_record = 3.95e-6;
  job.finalize_cost_per_key = 0.4e-6;    // re-emit key count times
  job.mem_class = MemClass::kRecords;
  job.partial_entry_bytes = 60;
  return job;
}

SimJob KnnSim(double input_gb, int num_reducers) {
  SimJob job;
  job.app = "knn";
  job.input_bytes = input_gb * kGiB;
  // 7-byte values; each record is compared against the 500-value
  // training set from the distributed cache, but only the surviving
  // top-k candidate is emitted (~1 intermediate record per input
  // record) — the pruning that makes GB-scale kNN feasible.
  job.map_input_records = static_cast<uint64_t>(job.input_bytes / 8);
  job.map_output_records = job.map_input_records;
  job.map_output_bytes = static_cast<double>(job.map_output_records) * 14;
  // Experimental values are unique keys, but bounded by the value range
  // (the paper notes keys grow slower than values).
  job.distinct_keys = static_cast<uint64_t>(
      std::min<double>(1e6, static_cast<double>(job.map_input_records)));
  job.selection_k = 10;
  job.output_bytes = static_cast<double>(job.distinct_keys) *
                     static_cast<double>(job.selection_k) * 14;
  job.num_reducers = num_reducers;

  job.map_cost_per_record = 7e-6;        // 500 primitive distance computes
  job.map_sort_cost_per_record = 1.6e-6; // secondary-sort tuple keys
  job.merge_cost_per_record = 1.6e-6;    // 16-byte tuple comparisons
  job.reduce_cost_per_record = 0.3e-6;   // take first k, skip rest
  job.incremental_cost_per_record = 0.7e-6;  // bounded top-k list update
  job.finalize_cost_per_key = 2.5e-6;    // emit k records
  job.mem_class = MemClass::kKKeys;
  job.partial_entry_bytes = 24;          // (distance, value) node
  return job;
}

SimJob LastFmSim(double input_gb, int num_reducers) {
  SimJob job;
  job.app = "lastfm";
  job.input_bytes = input_gb * kGiB;
  job.map_input_records = static_cast<uint64_t>(job.input_bytes / 12);
  job.map_output_records = job.map_input_records;
  job.map_output_bytes = static_cast<double>(job.map_output_records) * 14;
  job.distinct_keys = 5000;  // tracks
  job.output_bytes = static_cast<double>(job.distinct_keys) * 12;
  job.num_reducers = num_reducers;

  job.map_cost_per_record = 4e-6;        // split line, emit
  job.map_sort_cost_per_record = 1.8e-6;
  job.merge_cost_per_record = 1.0e-6;
  // Both modes insert every record into a per-track user set; the
  // barrier version just does it all after the barrier.
  job.reduce_cost_per_record = 1.0e-6;
  job.incremental_cost_per_record = 1.3e-6;
  job.finalize_cost_per_key = 1.0e-6;
  // Partial results are per-track user sets: O(records) worst case,
  // but with 50 users the sets saturate at 50 entries per track.
  job.mem_class = MemClass::kKeys;       // saturating set growth
  job.partial_entry_bytes = 50 * 24;     // track -> up to 50 users
  return job;
}

SimJob GeneticSim(int num_mappers, int num_reducers) {
  SimJob job;
  job.app = "genetic";
  // The paper runs 50M individuals per mapper; we scale to 5M per
  // mapper so the simulated with-barrier times land in Fig. 6(e)'s
  // 150-330s range on the modeled hardware (see EXPERIMENTS.md).
  const double individuals_per_mapper = 5e6;
  job.num_map_tasks = num_mappers;
  job.map_input_records =
      static_cast<uint64_t>(individuals_per_mapper) * num_mappers;
  job.input_bytes = static_cast<double>(job.map_input_records) * 11;
  job.map_output_records = job.map_input_records;
  job.map_output_bytes = static_cast<double>(job.map_output_records) * 14;
  job.distinct_keys = job.map_input_records;  // individuals ~ unique
  job.output_bytes = job.map_output_bytes;    // next generation
  job.num_reducers = num_reducers;

  job.map_cost_per_record = 8e-6;        // fitness evaluation + emit
  job.map_sort_cost_per_record = 1.2e-6;
  job.merge_cost_per_record = 0.8e-6;
  job.reduce_cost_per_record = 0.5e-6;   // window push + crossover share
  job.incremental_cost_per_record = 0.55e-6;  // identical work, no store
  job.finalize_cost_per_key = 0;         // emission happens per window
  job.mem_class = MemClass::kWindow;
  job.window_size = 16;
  job.partial_entry_bytes = 32;
  return job;
}

SimJob BlackScholesSim(int num_mappers) {
  SimJob job;
  job.app = "blackscholes";
  const double iterations = 1e6;  // per mapper
  job.num_map_tasks = num_mappers;
  job.map_input_records = static_cast<uint64_t>(iterations) * num_mappers;
  job.input_bytes = 1e4 * num_mappers;  // tiny work-unit files
  job.map_output_records = job.map_input_records;
  job.map_output_bytes = static_cast<double>(job.map_output_records) * 18;
  job.distinct_keys = 1;
  job.output_bytes = 64;
  job.num_reducers = 1;  // single-reducer aggregation

  job.map_cost_per_record = 6e-6;        // one Monte Carlo draw + emit
  job.map_sort_cost_per_record = 0.6e-6; // single-key runs sort trivially
  job.merge_cost_per_record = 0.35e-6;   // single-key merge still pays
  job.reduce_cost_per_record = 0.4e-6;
  job.incremental_cost_per_record = 0.15e-6;  // two running sums
  job.finalize_cost_per_key = 1e-6;
  job.mem_class = MemClass::kConstant;
  job.partial_entry_bytes = 48;
  return job;
}

}  // namespace bmr::simmr
