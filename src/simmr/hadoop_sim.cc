#include "simmr/hadoop_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <deque>
#include <memory>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/flownet.h"
#include "sim/resources.h"

namespace bmr::simmr {

namespace {

/// Hadoop's mapred.reduce.parallel.copies default ballpark.
constexpr int kParallelCopies = 4;

/// Fixed cost of creating/seeking one spill file beyond its streaming
/// write (metadata, seeks between runs at merge time).
constexpr double kSpillOverheadSeconds = 0.3;

/// Cumulative distinct keys seen after n of N stream records, over a
/// population of K keys.  Concave (Zipf-like text front-loads new
/// vocabulary, the long tail trickles in): D(n) = K(1 - e^{-4n/N}),
/// normalized so ~98% of the keys have appeared by the end of the
/// stream.  Spilled partial results re-accumulate only this *new* tail
/// (plus a small hot head absorbed into the per-entry constant), which
/// is what keeps the Fig. 5(b) sawtooth at ~total/threshold spills
/// rather than one per refill of recurring keys.
double DistinctSeen(double n, double keys, double stream_records) {
  if (keys <= 0 || stream_records <= 0) return 0;
  return keys * (1.0 - std::exp(-4.0 * n / stream_records));
}

/// Inverse of DistinctSeen: records from stream start until `d` keys
/// have been seen.  Infinity when unreachable.
double RecordsUntilDistinct(double d, double keys, double stream_records) {
  if (keys <= 0 || d >= keys) {
    return std::numeric_limits<double>::infinity();
  }
  return -(stream_records / 4.0) * std::log(1.0 - d / keys);
}

class JobSim {
 public:
  JobSim(const cluster::ClusterSpec& cluster, const SimJob& job)
      : cluster_(cluster),
        job_(job),
        slaves_(cluster.SlaveIds()),
        rng_(job.seed),
        net_(&sim_, MakeNetConfig(cluster)) {}

  SimResult Run();

 private:
  static sim::FlowNetConfig MakeNetConfig(const cluster::ClusterSpec& c) {
    sim::FlowNetConfig config;
    config.num_nodes = static_cast<int>(c.nodes.size());
    config.link_bytes_per_sec = c.link_bytes_per_sec;
    config.oversubscription = c.oversubscription;
    return config;
  }

  double Jitter() {
    return 1.0 + job_.task_jitter * (2.0 * rng_.NextDouble() - 1.0);
  }

  double Speed(int node) const { return cluster_.nodes[node].speed; }

  void FailOom(int reducer, double mem_bytes);

  // ---- Reduce-side state ----------------------------------------------
  struct Reducer {
    int id = 0;
    int node = -1;
    bool active = false;
    double start_time = 0;
    double jitter = 1.0;
    std::deque<int> fetch_queue;   // completed maps not yet fetched
    int active_fetches = 0;
    int fetched = 0;
    double last_fetch_done = 0;
    // Barrier-less processing state.
    double server_free_at = 0;     // when the fold thread goes idle
    double records_processed = 0;
    double keys_at_spill_base = 0; // distinct keys already spilled out
    int spills = 0;
    // Totals for this reducer.
    double records_total = 0;
    double keys_total = 0;
    double output_bytes = 0;
  };

  void StartMaps();
  double MapCpuSeconds() const;
  void DispatchMaps();
  void StartMapAttempt(int m, int node, bool backup);
  void MaybeSpeculate();
  void StartReducers();
  void ActivateReducer(Reducer* r);
  void OnMapDone(int m);
  void PumpFetches(Reducer* r);
  void OnSegmentFetched(Reducer* r, int m);
  void BarrierReduce(Reducer* r);
  void BarrierlessConsume(Reducer* r, double records, double arrival);
  void FinishBarrierless(Reducer* r);
  void WriteOutputAndFinish(Reducer* r, double start);
  double CurrentMemBytes(const Reducer& r) const;
  double MemAfter(const Reducer& r, double more_records) const;
  double EntryBytes() const;
  double RecordsUntilMem(const Reducer& r, double bytes) const;
  void SampleMemory(const Reducer& r, double t, double bytes);

  const cluster::ClusterSpec& cluster_;
  const SimJob& job_;
  std::vector<int> slaves_;
  Pcg32 rng_;

  sim::Simulation sim_;
  sim::FlowNetwork net_;
  std::vector<std::unique_ptr<sim::SlotResource>> map_slots_;     // per node
  std::vector<std::unique_ptr<sim::SlotResource>> reduce_slots_;  // per node

  int num_maps_ = 0;
  double records_per_map_ = 0;
  double out_records_per_map_ = 0;
  double out_bytes_per_map_ = 0;
  std::vector<int> map_node_;
  std::vector<double> map_start_;
  std::vector<double> map_jitter_;
  std::vector<double> map_done_;  // -1 = not yet
  std::vector<bool> backup_launched_;
  std::deque<int> pending_maps_;
  std::vector<int> free_map_slots_;
  size_t map_rr_cursor_ = 0;

  std::vector<Reducer> reducers_;
  int reducers_done_ = 0;

  mr::Timeline timeline_;
  SimResult result_;
  bool failed_ = false;
};

SimResult JobSim::Run() {
  // ---- Derived volumes -------------------------------------------------
  num_maps_ = job_.num_map_tasks > 0
                  ? job_.num_map_tasks
                  : static_cast<int>(std::ceil(
                        job_.input_bytes /
                        static_cast<double>(cluster_.dfs_block_bytes)));
  num_maps_ = std::max(num_maps_, 1);
  records_per_map_ =
      static_cast<double>(job_.map_input_records) / num_maps_;
  // The combiner folds a fraction of the map output away before the
  // shuffle (at some mapper CPU cost, charged in StartMaps).
  double keep = 1.0 - job_.combiner_reduction;
  out_records_per_map_ =
      static_cast<double>(job_.map_output_records) / num_maps_ * keep;
  out_bytes_per_map_ = job_.map_output_bytes / num_maps_ * keep;

  int n = static_cast<int>(cluster_.nodes.size());
  map_slots_.resize(n);
  reduce_slots_.resize(n);
  for (int i = 0; i < n; ++i) {
    map_slots_[i] = std::make_unique<sim::SlotResource>(
        &sim_, cluster_.nodes[i].map_slots, "map");
    reduce_slots_[i] = std::make_unique<sim::SlotResource>(
        &sim_, cluster_.nodes[i].reduce_slots, "reduce");
  }
  map_node_.assign(num_maps_, -1);
  map_start_.assign(num_maps_, 0.0);
  map_done_.assign(num_maps_, -1.0);
  backup_launched_.assign(num_maps_, false);

  reducers_.resize(job_.num_reducers);
  double records_per_reducer = static_cast<double>(job_.map_output_records) *
                               keep / job_.num_reducers;
  double keys_per_reducer =
      static_cast<double>(job_.distinct_keys) / job_.num_reducers;
  for (int r = 0; r < job_.num_reducers; ++r) {
    reducers_[r].id = r;
    reducers_[r].node = slaves_[r % slaves_.size()];
    reducers_[r].records_total = records_per_reducer;
    reducers_[r].keys_total = keys_per_reducer;
    reducers_[r].output_bytes = job_.output_bytes / job_.num_reducers;
  }

  StartMaps();
  StartReducers();
  sim_.Run();

  result_.events = timeline_.Snapshot();
  if (failed_) {
    result_.completion_seconds = result_.failure_time;
  }
  for (const auto& r : reducers_) {
    if (r.fetched == num_maps_ && result_.first_map_done > 0) {
      result_.mapper_slack = std::max(
          result_.mapper_slack, r.last_fetch_done - result_.first_map_done);
    }
  }
  return result_;
}

void JobSim::StartMaps() {
  // Pull-based dispatch, as in Hadoop: tasks wait in a global queue and
  // a node takes the next one whenever one of its map slots frees.
  // Slow nodes therefore naturally run fewer tasks.
  map_jitter_.resize(num_maps_);
  for (int m = 0; m < num_maps_; ++m) {
    map_jitter_[m] = Jitter();  // data skew: sticks to the task
    pending_maps_.push_back(m);
  }
  free_map_slots_.assign(cluster_.nodes.size(), 0);
  for (int node : slaves_) {
    free_map_slots_[node] = cluster_.nodes[node].map_slots;
  }
  DispatchMaps();
}

double JobSim::MapCpuSeconds() const {
  double cpu = records_per_map_ * job_.map_cost_per_record +
               out_records_per_map_ * job_.map_sort_cost_per_record;
  if (job_.combiner_reduction > 0) {
    // Combining touches every pre-combine output record once.
    cpu += static_cast<double>(job_.map_output_records) / num_maps_ *
           job_.reduce_cost_per_record;
  }
  return cpu;
}

void JobSim::DispatchMaps() {
  while (!pending_maps_.empty()) {
    // Round-robin over slaves with a free slot.
    int chosen = -1;
    for (size_t i = 0; i < slaves_.size(); ++i) {
      int node = slaves_[(map_rr_cursor_ + i) % slaves_.size()];
      if (free_map_slots_[node] > 0) {
        chosen = node;
        map_rr_cursor_ = (map_rr_cursor_ + i + 1) % slaves_.size();
        break;
      }
    }
    if (chosen < 0) return;
    int m = pending_maps_.front();
    pending_maps_.pop_front();
    StartMapAttempt(m, chosen, /*backup=*/false);
  }
}

void JobSim::StartMapAttempt(int m, int node, bool backup) {
  --free_map_slots_[node];
  if (!backup) {
    map_node_[m] = node;
    map_start_[m] = sim_.Now();
  }
  double duration = MapCpuSeconds() / Speed(node) * map_jitter_[m] +
                    out_bytes_per_map_ / cluster_.disk_bytes_per_sec;
  sim_.ScheduleAfter(duration, [this, m, node, backup] {
    ++free_map_slots_[node];
    if (!failed_ && map_done_[m] < 0) {
      if (backup) {
        ++result_.backups_won;
        map_node_[m] = node;  // reducers fetch from the winner
      }
      double now = sim_.Now();
      map_done_[m] = now;
      if (result_.first_map_done == 0) result_.first_map_done = now;
      result_.last_map_done = std::max(result_.last_map_done, now);
      OnMapDone(m);
      if (job_.speculative_execution) MaybeSpeculate();
    }
    if (!failed_) DispatchMaps();
  });
}

void JobSim::MaybeSpeculate() {
  // Median duration of completed maps.
  std::vector<double> done_durations;
  for (int m = 0; m < num_maps_; ++m) {
    if (map_done_[m] >= 0) {
      done_durations.push_back(map_done_[m] - map_start_[m]);
    }
  }
  if (done_durations.size() < 3) return;
  std::nth_element(done_durations.begin(),
                   done_durations.begin() + done_durations.size() / 2,
                   done_durations.end());
  double median = done_durations[done_durations.size() / 2];

  for (int m = 0; m < num_maps_; ++m) {
    if (map_done_[m] >= 0 || backup_launched_[m]) continue;
    bool running = map_start_[m] > 0 || map_node_[m] >= 0;
    if (!running) continue;  // still queued: will run somewhere healthy
    double elapsed = sim_.Now() - map_start_[m];
    if (elapsed < job_.speculation_slowness * median) continue;
    // A backup is worthwhile only if a free slot exists elsewhere.
    for (int node : slaves_) {
      if (node == map_node_[m] || free_map_slots_[node] <= 0) continue;
      backup_launched_[m] = true;
      ++result_.backups_launched;
      StartMapAttempt(m, node, /*backup=*/true);
      break;
    }
  }
}

void JobSim::StartReducers() {
  for (auto& r : reducers_) {
    reduce_slots_[r.node]->Acquire([this, rp = &r] { ActivateReducer(rp); });
  }
}

void JobSim::ActivateReducer(Reducer* r) {
  if (failed_) return;
  r->active = true;
  r->start_time = sim_.Now();
  r->server_free_at = sim_.Now();
  r->jitter = Jitter();
  // Everything that already finished is fetchable immediately.
  for (int m = 0; m < num_maps_; ++m) {
    if (map_done_[m] >= 0) r->fetch_queue.push_back(m);
  }
  SampleMemory(*r, sim_.Now(), 0);
  PumpFetches(r);
}

void JobSim::OnMapDone(int m) {
  timeline_.Record(mr::Phase::kMap, m, map_node_[m], map_start_[m],
                   map_done_[m]);
  for (auto& r : reducers_) {
    if (r.active) {
      r.fetch_queue.push_back(m);
      PumpFetches(&r);
    }
  }
}

void JobSim::PumpFetches(Reducer* r) {
  while (!failed_ && r->active_fetches < kParallelCopies &&
         !r->fetch_queue.empty()) {
    int m = r->fetch_queue.front();
    r->fetch_queue.pop_front();
    r->active_fetches++;
    double segment = out_bytes_per_map_ / job_.num_reducers;
    result_.shuffle_bytes += segment;
    net_.StartFlow(map_node_[m], r->node, segment,
                   [this, r, m] { OnSegmentFetched(r, m); });
  }
}

void JobSim::OnSegmentFetched(Reducer* r, int m) {
  (void)m;
  if (failed_) return;
  r->active_fetches--;
  r->fetched++;
  r->last_fetch_done = sim_.Now();
  double records = r->records_total / num_maps_;
  if (job_.barrierless) {
    BarrierlessConsume(r, records, sim_.Now());
  }
  if (r->fetched == num_maps_) {
    if (job_.barrierless) {
      FinishBarrierless(r);
    } else {
      BarrierReduce(r);
    }
  } else {
    PumpFetches(r);
  }
}

// ---- With barrier ------------------------------------------------------

void JobSim::BarrierReduce(Reducer* r) {
  double barrier_time = sim_.Now();
  timeline_.Record(mr::Phase::kShuffle, r->id, r->node, r->start_time,
                   barrier_time);
  // The merge buffer holds every record at the barrier (Fig. 2(b)).
  SampleMemory(*r, barrier_time,
               r->records_total * job_.partial_entry_bytes);

  double speed = Speed(r->node);
  double sort_secs =
      r->records_total * job_.merge_cost_per_record / speed * r->jitter;
  double reduce_secs =
      r->records_total * job_.reduce_cost_per_record / speed * r->jitter;
  sim_.ScheduleAfter(sort_secs, [this, r, barrier_time, sort_secs,
                                 reduce_secs] {
    double sort_done = sim_.Now();
    timeline_.Record(mr::Phase::kSortMerge, r->id, r->node, barrier_time,
                     sort_done);
    sim_.ScheduleAfter(reduce_secs, [this, r, sort_done] {
      timeline_.Record(mr::Phase::kReduce, r->id, r->node, sort_done,
                       sim_.Now());
      WriteOutputAndFinish(r, sim_.Now());
    });
    (void)sort_secs;
  });
}

// ---- Without barrier -----------------------------------------------------

double JobSim::CurrentMemBytes(const Reducer& r) const {
  return MemAfter(r, 0);
}

double JobSim::EntryBytes() const {
  double mult = job_.mem_class == MemClass::kKKeys
                    ? static_cast<double>(job_.selection_k)
                    : 1.0;
  return job_.partial_entry_bytes * mult;
}

double JobSim::MemAfter(const Reducer& r, double more) const {
  double n = r.records_processed + more;
  switch (job_.mem_class) {
    case MemClass::kNone:
      return 0;
    case MemClass::kConstant:
      return job_.partial_entry_bytes;
    case MemClass::kWindow:
      return static_cast<double>(job_.window_size) * job_.partial_entry_bytes;
    case MemClass::kKeys:
    case MemClass::kKKeys: {
      double seen = DistinctSeen(n, r.keys_total, r.records_total);
      return std::max(0.0, seen - r.keys_at_spill_base) * EntryBytes();
    }
    case MemClass::kRecords:
      // Every record retained; spills drop what is already on disk.
      return std::max(0.0, n - r.keys_at_spill_base) * EntryBytes();
  }
  return 0;
}

// Records (from stream start) at which this reducer's resident partial
// results reach `bytes`; infinity when they never do.
double JobSim::RecordsUntilMem(const Reducer& r, double bytes) const {
  double entries = bytes / EntryBytes() + r.keys_at_spill_base;
  switch (job_.mem_class) {
    case MemClass::kKeys:
    case MemClass::kKKeys:
      return RecordsUntilDistinct(entries, r.keys_total, r.records_total);
    case MemClass::kRecords:
      return entries;
    default:
      return std::numeric_limits<double>::infinity();
  }
}

void JobSim::SampleMemory(const Reducer& r, double t, double bytes) {
  result_.memory_samples.push_back(SimMemorySample{t, r.id, bytes});
}

void JobSim::FailOom(int reducer, double mem_bytes) {
  if (failed_) return;
  failed_ = true;
  result_.failed_oom = true;
  result_.failure_time = sim_.Now();
  result_.status = Status::ResourceExhausted(
      "reducer " + std::to_string(reducer) + " exceeded heap with " +
      std::to_string(static_cast<uint64_t>(mem_bytes)) + " bytes");
}

void JobSim::BarrierlessConsume(Reducer* r, double records, double arrival) {
  // The fold thread drains the FIFO: work starts when both the record
  // batch has arrived and the previous backlog is gone.
  double speed = Speed(r->node);
  double per_record = job_.incremental_cost_per_record / speed * r->jitter;
  if (job_.store.type == core::StoreType::kKvStore &&
      job_.store.kv_ops_per_sec > 0) {
    // Read-modify-update: one put plus the cache-missing share of gets,
    // at the store's sustained op rate.
    double ops = 1.0 + (1.0 - job_.store.kv_cache_fraction);
    per_record += ops / job_.store.kv_ops_per_sec;
  }

  const bool tracks_memory = job_.mem_class == MemClass::kKeys ||
                             job_.mem_class == MemClass::kKKeys ||
                             job_.mem_class == MemClass::kRecords;
  double t = std::max(arrival, r->server_free_at);
  double remaining = records;
  while (remaining > 0) {
    // In-memory heap death (Fig. 5(a)): find the crossing record.
    if (tracks_memory && job_.store.type == core::StoreType::kInMemory &&
        job_.store.heap_limit_bytes > 0 &&
        MemAfter(*r, remaining) >
            static_cast<double>(job_.store.heap_limit_bytes)) {
      double n_fail = RecordsUntilMem(
          *r, static_cast<double>(job_.store.heap_limit_bytes));
      double crossing = std::max(0.0, n_fail - r->records_processed);
      double fail_at = t + crossing * per_record;
      r->records_processed += crossing;
      sim_.ScheduleAt(fail_at, [this, r] {
        SampleMemory(*r, sim_.Now(), CurrentMemBytes(*r));
        FailOom(r->id, CurrentMemBytes(*r));
      });
      r->server_free_at = fail_at;
      return;
    }
    // Spill-and-merge threshold crossing within this batch?
    if (tracks_memory && job_.store.type == core::StoreType::kSpillMerge &&
        job_.store.spill_threshold_bytes > 0 &&
        MemAfter(*r, remaining) >
            static_cast<double>(job_.store.spill_threshold_bytes)) {
      double n_spill = RecordsUntilMem(
          *r, static_cast<double>(job_.store.spill_threshold_bytes));
      double crossing =
          std::min(remaining,
                   std::max(1.0, n_spill - r->records_processed));
      t += crossing * per_record;
      r->records_processed += crossing;
      remaining -= crossing;
      double resident = MemAfter(*r, 0);
      if (resident >=
          static_cast<double>(job_.store.spill_threshold_bytes) * 0.999) {
        // Spill: write the memtable in key order, pause the fold thread.
        SampleMemory(*r, t, resident);
        t += resident / cluster_.disk_bytes_per_sec + kSpillOverheadSeconds;
        r->spills++;
        r->keys_at_spill_base += resident / EntryBytes();
        SampleMemory(*r, t, 0);
      }
      continue;
    }
    // No boundary in this batch: just charge the fold time.
    t += remaining * per_record;
    r->records_processed += remaining;
    remaining = 0;
  }
  r->server_free_at = t;
  SampleMemory(*r, t, MemAfter(*r, 0));
}

void JobSim::FinishBarrierless(Reducer* r) {
  // All segments fetched; the fold thread finishes at server_free_at,
  // then runs the final ordered emission.
  double speed = Speed(r->node);
  double finalize = r->keys_total * job_.finalize_cost_per_key / speed;
  if (job_.store.type == core::StoreType::kSpillMerge && r->spills > 0) {
    // Merge phase re-reads every spill file (plus per-file open/seek).
    double spilled_bytes =
        static_cast<double>(job_.store.spill_threshold_bytes) * r->spills;
    finalize += spilled_bytes / cluster_.disk_bytes_per_sec +
                r->spills * kSpillOverheadSeconds;
  }
  if (job_.store.type == core::StoreType::kKvStore &&
      job_.store.kv_ops_per_sec > 0) {
    finalize += r->keys_total / job_.store.kv_ops_per_sec;
  }
  double done_at = std::max(r->server_free_at, sim_.Now()) + finalize;
  sim_.ScheduleAt(done_at, [this, r] {
    if (failed_) return;
    timeline_.Record(mr::Phase::kShuffleReduce, r->id, r->node,
                     r->start_time, sim_.Now());
    SampleMemory(*r, sim_.Now(), 0);
    WriteOutputAndFinish(r, sim_.Now());
  });
}

void JobSim::WriteOutputAndFinish(Reducer* r, double start) {
  // DFS write: local disk plus a pipelined remote replica stream
  // (replication - 1 copies share the uplink serially — the output
  // bottleneck the paper observes for WordCount and the GA).
  double disk = r->output_bytes / cluster_.disk_bytes_per_sec;
  double replicas = std::max(0, cluster_.dfs_replication - 1);
  double network = replicas * r->output_bytes / cluster_.link_bytes_per_sec;
  double duration = disk + network;
  sim_.ScheduleAfter(duration, [this, r, start] {
    if (failed_) return;
    timeline_.Record(mr::Phase::kOutput, r->id, r->node, start, sim_.Now());
    reduce_slots_[r->node]->Release();
    if (++reducers_done_ == job_.num_reducers) {
      result_.completion_seconds = sim_.Now();
    }
  });
}

}  // namespace

SimResult SimulateJob(const cluster::ClusterSpec& cluster, const SimJob& job) {
  JobSim sim(cluster, job);
  return sim.Run();
}

mr::JobMetrics ToJobMetrics(const SimResult& result) {
  mr::JobMetrics m;
  m.events = result.events;
  m.elapsed_seconds = result.completion_seconds;
  m.first_map_done = result.first_map_done;
  m.last_map_done = result.last_map_done;
  m.counters.Add(mr::kCtrShuffleBytes,
                 static_cast<uint64_t>(result.shuffle_bytes));
  m.counters.Add(mr::kCtrSpeculativeMapsLaunched,
                 static_cast<uint64_t>(result.backups_launched));
  m.counters.Add(mr::kCtrSpeculativeMapsWon,
                 static_cast<uint64_t>(result.backups_won));
  m.memory_samples.reserve(result.memory_samples.size());
  for (const SimMemorySample& s : result.memory_samples) {
    m.memory_samples.push_back(
        mr::MemorySample{s.t, s.reducer, static_cast<uint64_t>(s.bytes)});
  }
  return m;
}

double ImprovementPercent(const cluster::ClusterSpec& cluster, SimJob job) {
  job.barrierless = false;
  SimResult with = SimulateJob(cluster, job);
  job.barrierless = true;
  SimResult without = SimulateJob(cluster, job);
  if (with.completion_seconds <= 0) return 0;
  return (with.completion_seconds - without.completion_seconds) /
         with.completion_seconds * 100.0;
}

}  // namespace bmr::simmr
