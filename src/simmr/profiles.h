// Paper-scale SimJob builders for the six evaluated applications.
//
// Volumes follow the paper's workloads (§6.1); per-record cost
// constants are set to land the with-barrier runs in the paper's
// absolute time range on the 16-node cluster model, and are
// sanity-checked against per-record costs measured on the real engine
// by simmr/calibrate.  See EXPERIMENTS.md for the resulting
// paper-vs-simulated comparison.
#pragma once

#include "simmr/model.h"

namespace bmr::simmr {

/// WordCount over Zipf text (Fig. 4, 6(b), 9, 10).
SimJob WordCountSim(double input_gb, int num_reducers = 60);

/// Sort over random integers (Fig. 6(a)).
SimJob SortSim(double input_gb, int num_reducers = 60);

/// k-Nearest Neighbors, k=10, values in [0, 1e6] (Fig. 6(c)).
SimJob KnnSim(double input_gb, int num_reducers = 60);

/// Last.fm unique listens, 50 users x 5000 tracks (Fig. 6(d)).
SimJob LastFmSim(double input_gb, int num_reducers = 60);

/// Genetic algorithm, 50M individuals per mapper (Fig. 6(e), 8).
SimJob GeneticSim(int num_mappers, int num_reducers = 40);

/// Black-Scholes, 1M Monte Carlo iterations per mapper (Fig. 6(f)).
SimJob BlackScholesSim(int num_mappers);

}  // namespace bmr::simmr
