// Cost-model calibration: measures the per-record costs of the real
// engine's hot paths (the barrier's merge + grouped reduce vs the
// barrier-less store fold) so the simulator's constants can be checked
// against this machine instead of being taken on faith.
//
// The measured machine differs from the paper's 2010-era Xeons, so the
// *absolute* constants in profiles.cc are period-calibrated; this
// module verifies the *ratios* that drive every result shape (e.g.
// red-black insert slower than merge per record — the Fig. 6(a)
// mechanism).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/partial_store.h"

namespace bmr::simmr {

struct MicroCosts {
  std::string workload;
  uint64_t records = 0;
  uint64_t distinct_keys = 0;
  /// Barrier path: k-way merge of sorted runs, per record.
  double merge_secs_per_record = 0;
  /// Barrier path: grouped reduce function application, per record.
  double grouped_reduce_secs_per_record = 0;
  /// Barrier-less path: store get + fold + put, per record.
  double incremental_secs_per_record = 0;
  /// Barrier-less path: final ordered emission, per distinct key.
  double finalize_secs_per_key = 0;
};

/// Measure WordCount-shaped costs: `records` (word, 1) records over
/// `distinct` keys, Zipf-distributed, split into `runs` sorted runs for
/// the merge measurement.  Deterministic in `seed`.
MicroCosts MeasureAggregationCosts(uint64_t records, uint64_t distinct,
                                   int runs, uint64_t seed,
                                   core::StoreType store_type =
                                       core::StoreType::kInMemory);

/// Measure Sort-shaped costs: unique-ish keys, count partials — the
/// degenerate case where the red-black path loses to the merge.
MicroCosts MeasureSortCosts(uint64_t records, int runs, uint64_t seed);

}  // namespace bmr::simmr
