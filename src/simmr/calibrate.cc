#include "simmr/calibrate.h"

#include <algorithm>

#include "common/rng.h"
#include "common/serde.h"
#include "common/stopwatch.h"
#include "core/barrierless_driver.h"
#include "mr/shuffle.h"
#include "mr/types.h"

namespace bmr::simmr {

namespace {

/// WordCount-style fold.
class CountReducer final : public core::IncrementalReducer {
 public:
  std::string InitPartial(Slice) override { return EncodeI64(0); }
  void Update(Slice, Slice value, std::string* partial,
              mr::ReduceEmitter*) override {
    int64_t acc = 0, v = 0;
    DecodeI64(Slice(*partial), &acc);
    DecodeI64(value, &v);
    *partial = EncodeI64(acc + v);
  }
  std::string MergePartials(Slice, Slice a, Slice b) override {
    int64_t x = 0, y = 0;
    DecodeI64(a, &x);
    DecodeI64(b, &y);
    return EncodeI64(x + y);
  }
};

class NullEmitter final : public mr::ReduceEmitter {
 public:
  void Emit(Slice, Slice) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Barrier-mode summing reducer for the grouped measurement.
class SumGroupReducer final : public mr::Reducer {
 public:
  explicit SumGroupReducer(uint64_t* sink) : sink_(sink) {}
  void Reduce(Slice, mr::ValuesIterator* values,
              mr::ReduceContext*) override {
    int64_t sum = 0;
    Slice v;
    while (values->Next(&v)) {
      int64_t x = 0;
      DecodeI64(v, &x);
      sum += x;
    }
    *sink_ += static_cast<uint64_t>(sum);
  }

 private:
  uint64_t* sink_;
};

class NullReduceCtx final : public mr::ReduceContext {
 public:
  void Emit(Slice, Slice) override {}
  const Config& config() const override { return config_; }
  mr::Counters* counters() override { return &counters_; }

 private:
  Config config_;
  mr::Counters counters_;
};

std::vector<std::vector<mr::Record>> MakeSortedRuns(
    uint64_t records, uint64_t distinct, int runs, uint64_t seed,
    bool zipf_keys) {
  std::vector<std::vector<mr::Record>> out(runs);
  Pcg32 rng(seed);
  ZipfGenerator zipf(std::max<uint64_t>(distinct, 1), 1.0, seed * 3 + 1);
  std::string one = EncodeI64(1);
  for (uint64_t i = 0; i < records; ++i) {
    uint64_t k = zipf_keys ? zipf.Next()
                           : rng.NextU64() % std::max<uint64_t>(distinct, 1);
    out[i % runs].emplace_back("key" + std::to_string(k), one);
  }
  for (auto& run : out) {
    std::stable_sort(run.begin(), run.end(),
                     [](const mr::Record& a, const mr::Record& b) {
                       return a.key < b.key;
                     });
  }
  return out;
}

MicroCosts MeasureWith(std::string name, uint64_t records, uint64_t distinct,
                       int runs, uint64_t seed, bool zipf_keys,
                       double fold_cost_scale,
                       core::StoreType store_type) {
  MicroCosts costs;
  costs.workload = std::move(name);
  costs.records = records;
  costs.distinct_keys = distinct;
  (void)fold_cost_scale;

  auto sorted_runs = MakeSortedRuns(records, distinct, runs, seed, zipf_keys);

  // Barrier path: merge then grouped reduce.
  Stopwatch timer;
  auto merged = mr::MergeSortedRuns(std::move(sorted_runs), nullptr);
  costs.merge_secs_per_record = timer.ElapsedSeconds() / records;

  uint64_t sink = 0;
  SumGroupReducer reducer(&sink);
  NullReduceCtx ctx;
  timer.Restart();
  (void)mr::ReduceGroups(merged, nullptr,
                         &reducer, &ctx);  // timing probe; cannot fail in-mem
  costs.grouped_reduce_secs_per_record = timer.ElapsedSeconds() / records;

  // Barrier-less path: fold every record through the store in a fresh
  // arrival order (unsorted, as the FIFO would deliver them).
  auto arrival = MakeSortedRuns(records, distinct, 1, seed + 17, zipf_keys);
  CountReducer incremental;
  core::StoreConfig store_config;
  store_config.type = store_type;
  Config job_config;
  core::BarrierlessDriver driver(&incremental, store_config, job_config);
  NullEmitter emitter;
  // Shuffle arrival order: de-sort deterministically.
  auto& stream = arrival[0];
  Pcg32 shuffle_rng(seed + 23);
  for (size_t i = stream.size(); i > 1; --i) {
    std::swap(stream[i - 1], stream[shuffle_rng.NextBounded(
                                 static_cast<uint32_t>(i))]);
  }
  timer.Restart();
  for (const auto& record : stream) {
    (void)driver.Consume(Slice(record.key), Slice(record.value),
                         &emitter);  // timing probe; store errors moot
  }
  costs.incremental_secs_per_record = timer.ElapsedSeconds() / records;

  timer.Restart();
  (void)driver.Finalize(&emitter);  // timing probe; output discarded anyway
  costs.finalize_secs_per_key =
      timer.ElapsedSeconds() / std::max<uint64_t>(distinct, 1);
  return costs;
}

}  // namespace

MicroCosts MeasureAggregationCosts(uint64_t records, uint64_t distinct,
                                   int runs, uint64_t seed,
                                   core::StoreType store_type) {
  return MeasureWith("aggregation", records, distinct, runs, seed,
                     /*zipf_keys=*/true, 1.0, store_type);
}

MicroCosts MeasureSortCosts(uint64_t records, int runs, uint64_t seed) {
  // Unique-ish key space: the tree grows to O(records).
  return MeasureWith("sort", records, records, runs, seed,
                     /*zipf_keys=*/false, 1.0, core::StoreType::kInMemory);
}

}  // namespace bmr::simmr
