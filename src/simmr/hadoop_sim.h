// Discrete-event model of Hadoop-0.20-style execution — with and
// without the stage barrier — on a configurable cluster.
//
// Task lifecycle (with barrier), per §2–3 of the paper:
//   map task:    read local block → map fn → sort output → write local
//   reduce task: occupy a slot from job start; fetch each mapper's
//                segment as that mapper finishes (eager shuffle);
//                BARRIER; merge-sort all buffers; grouped reduce;
//                write output to DFS.
// Without barrier, the reduce task folds records into partial results
// as segments arrive (no map-side or reduce-side sort), then emits the
// finished keys and writes output.  Partial-result memory follows the
// job's MemClass and the configured overflow store, including spill
// pauses, KV-store per-op costs, and the in-memory OOM kill.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "mr/metrics.h"
#include "mr/timeline.h"
#include "simmr/model.h"

namespace bmr::simmr {

struct SimResult {
  Status status;
  double completion_seconds = 0;
  double first_map_done = 0;
  double last_map_done = 0;
  /// Virtual time at which the job died of reducer OOM (if it did).
  double failure_time = 0;
  bool failed_oom = false;
  /// Mapper slack (§3.2): gap between first mapper completion and
  /// shuffle completion, max over reducers.
  double mapper_slack = 0;
  double shuffle_bytes = 0;
  /// Speculation accounting.
  int backups_launched = 0;
  int backups_won = 0;
  std::vector<mr::TaskEvent> events;
  std::vector<SimMemorySample> memory_samples;

  bool ok() const { return status.ok(); }
};

/// Run one simulated job on the given cluster.  Deterministic in
/// (job.seed, cluster).
SimResult SimulateJob(const cluster::ClusterSpec& cluster, const SimJob& job);

/// Convenience: percentage improvement of barrier-less over barrier for
/// the same job description ((with - without) / with * 100).
double ImprovementPercent(const cluster::ClusterSpec& cluster, SimJob job);

/// Project a SimResult onto the reporting schema shared with the real
/// engine (mr::MetricsRegistry::Snapshot / mr::JobResult::ToMetrics),
/// using the engine's counter names, so real and simulated runs print
/// and compare through one code path.
mr::JobMetrics ToJobMetrics(const SimResult& result);

}  // namespace bmr::simmr
