// Paper-scale workload model for the cluster simulator.
//
// The evaluation in the paper ran on 16 real nodes over 2–16 GB inputs;
// this module describes a job to the DES as record/byte volumes and
// per-record costs so those experiments can be replayed in virtual
// time.  Cost constants live in profiles.cc and are sanity-checked
// against per-record costs measured on the real engine
// (simmr/calibrate) — see DESIGN.md for the substitution argument.
#pragma once

#include <cstdint>
#include <string>

#include "core/partial_store.h"

namespace bmr::simmr {

/// Memory complexity class of the partial results (Table 1).
enum class MemClass {
  kNone,      // Identity: nothing retained
  kConstant,  // Single-reducer aggregation: O(1)
  kWindow,    // Cross-key: O(window_size)
  kKeys,      // Aggregation: O(keys)
  kKKeys,     // Selection: O(k * keys)
  kRecords,   // Sorting / post-reduction: O(records)
};

/// Overflow-management scheme used by a barrier-less reducer.
struct StoreModel {
  core::StoreType type = core::StoreType::kInMemory;
  uint64_t heap_limit_bytes = 0;          // 0 = unlimited
  uint64_t spill_threshold_bytes = 240ull << 20;
  double kv_ops_per_sec = 30000;          // BerkeleyDB JE measurement
  double kv_cache_fraction = 0.2;         // hit rate proxy for gets
};

/// Everything the simulator needs to know about one job.
struct SimJob {
  std::string app = "job";
  bool barrierless = false;

  // ---- Volumes -------------------------------------------------------
  double input_bytes = 1e9;
  uint64_t map_input_records = 0;
  /// Map output (post-combiner, if any), across all mappers.
  uint64_t map_output_records = 0;
  double map_output_bytes = 0;
  /// Total distinct intermediate keys.
  uint64_t distinct_keys = 0;
  double output_bytes = 0;

  // ---- Shape ---------------------------------------------------------
  int num_reducers = 60;
  /// 0 = derive map tasks from input_bytes / dfs block size.
  int num_map_tasks = 0;

  // ---- Per-record costs, seconds on a speed-1.0 core -----------------
  /// Map function cost per *input* record (parse + user code + emit).
  double map_cost_per_record = 2e-6;
  /// Map-side sort cost per *output* record (with-barrier mode only).
  double map_sort_cost_per_record = 1.2e-6;
  /// Reduce-side merge cost per record at the barrier (heap merge of
  /// sorted runs).
  double merge_cost_per_record = 1.0e-6;
  /// Grouped reduce-function cost per record (with barrier).
  double reduce_cost_per_record = 1.0e-6;
  /// Barrier-less fold cost per record: store get + update + put.  The
  /// red-black tree path the paper's Sort analysis highlights.
  double incremental_cost_per_record = 1.6e-6;
  /// Final emission cost per distinct key (barrier-less only).
  double finalize_cost_per_key = 0.8e-6;

  // ---- Memory model --------------------------------------------------
  MemClass mem_class = MemClass::kKeys;
  /// Estimated bytes per partial-result entry (key + value + overhead).
  double partial_entry_bytes = 64;
  /// Cross-key window size (kWindow only).
  uint64_t window_size = 0;
  /// Selection factor k (kKKeys only).
  uint64_t selection_k = 10;

  StoreModel store;

  /// Relative per-task duration jitter (uniform in [1-j, 1+j]); models
  /// input skew and the machine-to-machine variation the paper calls
  /// out in commodity datacenters.
  double task_jitter = 0.3;
  uint64_t seed = 1;

  /// Map-side combiner model: fraction of map-output records folded
  /// away before the shuffle (0 = no combiner).  Charges
  /// reduce_cost_per_record per pre-combine record at the mapper.
  double combiner_reduction = 0.0;

  /// Speculative execution (Hadoop-style backup tasks): when a map
  /// task has run longer than `speculation_slowness` x the median
  /// completed duration and a slot is free elsewhere, a backup copy is
  /// launched; the first finisher wins.
  bool speculative_execution = false;
  double speculation_slowness = 1.3;
};

/// One (virtual time, reducer, bytes) heap sample (Fig. 5 raw data).
struct SimMemorySample {
  double t = 0;
  int reducer = 0;
  double bytes = 0;
};

}  // namespace bmr::simmr
