#include "obs/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>

namespace bmr::obs {
namespace {

// Local JSON helpers: the flight ring carries dynamic strings, so it
// cannot ride the static-lifetime Span/TraceLog pipeline in export.cc;
// it emits the same Perfetto shape itself.
void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  AppendEscaped(&out, s);
  out += "\"";
  return out;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

constexpr int kFlightPid = 3;

}  // namespace

FlightRecorder* FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return recorder;
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void FlightRecorder::Append(FlightEvent event) {
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

void FlightRecorder::RecordSpan(const std::string& name,
                                const std::string& category, int64_t arg,
                                int node, double duration_s) {
  FlightEvent e;
  e.name = name;
  e.category = category;
  e.arg = arg;
  e.node = node;
  e.end_s = clock_.ElapsedSeconds();
  e.start_s = duration_s > 0 && duration_s < e.end_s ? e.end_s - duration_s
                                                     : e.end_s;
  Append(std::move(e));
}

void FlightRecorder::Note(const std::string& name, const std::string& category,
                          int64_t arg, int node) {
  RecordSpan(name, category, arg, node, 0);
}

void FlightRecorder::RecordCounter(const std::string& name, double value) {
  FlightEvent e;
  e.kind = FlightEvent::Kind::kCounter;
  e.name = name;
  e.value = value;
  e.start_s = e.end_s = clock_.ElapsedSeconds();
  Append(std::move(e));
}

void FlightRecorder::RequestDump(const std::string& reason, int64_t arg) {
  {
    MutexLock lock(mu_);
    dump_reasons_.push_back(reason);
  }
  Note(reason, kFlightTriggerCategory, arg, -1);
}

bool FlightRecorder::dump_pending() const {
  MutexLock lock(mu_);
  return !dump_reasons_.empty();
}

std::vector<std::string> FlightRecorder::TakeDumpReasons() {
  MutexLock lock(mu_);
  std::vector<std::string> reasons;
  reasons.swap(dump_reasons_);
  return reasons;
}

std::vector<FlightEvent> FlightRecorder::Chronological(size_t last_n) const {
  std::vector<FlightEvent> events;
  events.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    events.assign(ring_.begin(), ring_.end());
  } else {
    events.assign(ring_.begin() + next_, ring_.end());
    events.insert(events.end(), ring_.begin(), ring_.begin() + next_);
  }
  if (last_n > 0 && events.size() > last_n) {
    events.erase(events.begin(), events.end() - last_n);
  }
  return events;
}

std::string FlightRecorder::SnapshotJson(size_t last_n) const {
  std::vector<FlightEvent> events;
  {
    MutexLock lock(mu_);
    events = Chronological(last_n);
  }
  // The Perfetto validator requires X-event timestamps non-decreasing
  // in document order; RecordSpan backdates starts, so sort.
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     return a.start_s < b.start_s;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  comma();
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(kFlightPid) +
         ",\"name\":\"process_name\",\"args\":{\"name\":\"bmr-flight\"}}";
  comma();
  out += "{\"ph\":\"M\",\"pid\":" + std::to_string(kFlightPid) +
         ",\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":"
         "\"flight-ring\"}}";
  int span_seq = 0;
  for (const FlightEvent& e : events) {
    comma();
    if (e.kind == FlightEvent::Kind::kCounter) {
      out += "{\"ph\":\"C\",\"pid\":" + std::to_string(kFlightPid) +
             ",\"tid\":0,\"ts\":" + Num(e.start_s * 1e6) +
             ",\"name\":" + JsonString(e.name) +
             ",\"args\":{\"value\":" + Num(e.value) + "}}";
      continue;
    }
    double dur = (e.end_s - e.start_s) * 1e6;
    if (dur < 0) dur = 0;
    out += "{\"ph\":\"X\",\"pid\":" + std::to_string(kFlightPid) +
           ",\"tid\":0,\"ts\":" + Num(e.start_s * 1e6) +
           ",\"dur\":" + Num(dur) + ",\"name\":" + JsonString(e.name) +
           ",\"cat\":" + JsonString(e.category) +
           ",\"args\":{\"span\":" + std::to_string(++span_seq) +
           ",\"parent\":0";
    if (e.arg >= 0) out += ",\"id\":" + std::to_string(e.arg);
    if (e.node >= 0) out += ",\"node\":" + std::to_string(e.node);
    out += "}}";
  }
  out += "]}";
  return out;
}

StatusOr<std::string> FlightRecorder::DumpToDir(const std::string& dir) {
  uint64_t seq;
  {
    MutexLock lock(mu_);
    seq = dump_seq_++;
  }
  const std::string path = dir + "/flight_" + std::to_string(getpid()) + "_" +
                           std::to_string(seq) + ".json";
  const std::string json = SnapshotJson(0);
  std::ofstream out(path, std::ios::trunc);
  out << json;
  out.close();
  if (!out) {
    return Status::Internal("cannot write flight artifact " + path);
  }
  return path;
}

uint64_t FlightRecorder::overwritten() const {
  MutexLock lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

size_t FlightRecorder::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

void FlightRecorder::ResetForTest() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  dump_reasons_.clear();
}

}  // namespace bmr::obs
