#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <set>
#include <vector>

#include "obs/metric_names.h"

namespace bmr::obs {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  AppendEscaped(&out, s);
  out += "\"";
  return out;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

double Micros(double seconds) { return seconds * 1e6; }

}  // namespace

std::string PerfettoTraceJson(const TraceLog& log) {
  std::vector<const Span*> spans;
  spans.reserve(log.spans.size());
  for (const Span& s : log.spans) spans.push_back(&s);
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span* a, const Span* b) {
                     if (a->start_s != b->start_s) {
                       return a->start_s < b->start_s;
                     }
                     return a->id < b->id;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Process metadata for every pid in use (pid 1 = engine threads,
  // pid 2 = task lanes, others as the caller assigns).
  std::set<int> pids;
  for (const Span* s : spans) pids.insert(s->pid);
  for (const TrackInfo& t : log.tracks) pids.insert(t.pid);
  for (const CounterSample& c : log.counters) pids.insert(c.pid);
  for (int pid : pids) {
    comma();
    const char* name = pid == 1 ? "bmr-engine" : pid == 2 ? "bmr-tasks" : "bmr";
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"name\":\"process_name\",\"args\":{\"name\":\"" + name + "\"}}";
  }
  for (const TrackInfo& t : log.tracks) {
    comma();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(t.pid) +
           ",\"tid\":" + std::to_string(t.tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":" +
           JsonString(t.name) + "}}";
  }

  for (const Span* s : spans) {
    comma();
    double dur = Micros(s->end_s - s->start_s);
    if (dur < 0) dur = 0;
    out += "{\"ph\":\"X\",\"pid\":" + std::to_string(s->pid) +
           ",\"tid\":" + std::to_string(s->tid) +
           ",\"ts\":" + Num(Micros(s->start_s)) + ",\"dur\":" + Num(dur) +
           ",\"name\":" + JsonString(s->name) +
           ",\"cat\":" + JsonString(s->category) +
           ",\"args\":{\"span\":" + std::to_string(s->id) +
           ",\"parent\":" + std::to_string(s->parent);
    if (s->arg >= 0) out += ",\"id\":" + std::to_string(s->arg);
    out += "}}";
  }

  for (const CounterSample& c : log.counters) {
    comma();
    out += "{\"ph\":\"C\",\"pid\":" + std::to_string(c.pid) +
           ",\"tid\":" + std::to_string(c.tid) +
           ",\"ts\":" + Num(Micros(c.t_s)) + ",\"name\":" +
           JsonString(c.name) + ",\"args\":{\"value\":" + Num(c.value) + "}}";
  }

  out += "]}\n";
  return out;
}

namespace {

/// Splits a registered series name that may carry an embedded label
/// set (`bmr_rpc_call_us{transport="tcp"}`) into the bare family name
/// and the braced label block ("" when unlabeled).  TYPE lines must
/// name the family, never a labeled child, or the exposition is
/// malformed.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  *base = name;
  labels->clear();
  size_t brace = name.find('{');
  if (brace != std::string::npos && name.back() == '}') {
    *base = name.substr(0, brace);
    *labels = name.substr(brace + 1, name.size() - brace - 2);
  }
}

void AppendHistogram(std::string* out, const std::string& name,
                     const LogHistogram& h) {
  // A registered name may carry a label set (metric_names.h declares
  // e.g. bmr_rpc_call_us{transport="tcp"}); the labels re-attach to
  // every series of the family after the _bucket/_sum/_count suffix,
  // with `le` kept last as Prometheus convention expects.
  std::string base;
  std::string labels;
  SplitLabels(name, &base, &labels);
  const std::string plain = labels.empty() ? "" : "{" + labels + "}";
  const std::string le_open =
      labels.empty() ? "{le=\"" : "{" + labels + ",le=\"";
  *out += "# TYPE " + base + " histogram\n";
  const std::vector<uint64_t>& buckets = h.buckets();
  size_t last = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] != 0) last = b;
  }
  uint64_t cumulative = 0;
  for (size_t b = 0; b <= last; ++b) {
    cumulative += buckets[b];
    uint64_t le = b == 0 ? 0 : (1ull << b) - 1;
    *out += base + "_bucket" + le_open + std::to_string(le) + "\"} " +
            std::to_string(cumulative) + "\n";
  }
  *out += base + "_bucket" + le_open + "+Inf\"} " +
          std::to_string(h.count()) + "\n";
  *out += base + "_sum" + plain + " " + std::to_string(h.sum()) + "\n";
  *out += base + "_count" + plain + " " + std::to_string(h.count()) + "\n";
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snap) {
  std::string out;

  // Fired faults first, as one labeled family (satellite: chaos runs
  // must surface in the exposition), then the plain job counters.
  const size_t fault_prefix_len = std::strlen(kCtrFaultInjectedPrefix);
  bool fault_type_emitted = false;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind(kCtrFaultInjectedPrefix, 0) != 0) continue;
    if (!fault_type_emitted) {
      out += std::string("# TYPE ") + kPromFaultsInjected + " counter\n";
      fault_type_emitted = true;
    }
    out += std::string(kPromFaultsInjected) + "{kind=\"" +
           name.substr(fault_prefix_len) + "\"} " + std::to_string(value) +
           "\n";
  }
  // Counters already carrying the bmr_ prefix are full series names
  // (possibly labeled, e.g. bmr_service_jobs_done_total{pool="a"}):
  // they pass through verbatim with one TYPE line per family.  Bare
  // engine counters get the historical bmr_job_<name>_total mapping.
  std::set<std::string> counter_families;
  for (const auto& [name, value] : snap.counters) {
    if (name.rfind(kCtrFaultInjectedPrefix, 0) == 0) continue;
    if (name.rfind("bmr_", 0) == 0) {
      std::string base;
      std::string labels;
      SplitLabels(name, &base, &labels);
      if (counter_families.insert(base).second) {
        out += "# TYPE " + base + " counter\n";
      }
      out += name + " " + std::to_string(value) + "\n";
      continue;
    }
    std::string series = kPromJobCounterPrefix + name + "_total";
    out += "# TYPE " + series + " counter\n";
    out += series + " " + std::to_string(value) + "\n";
  }

  // Same family/TYPE discipline for gauges: a labeled gauge used to
  // emit its label block inside the TYPE line (malformed) and one TYPE
  // line per child series.
  std::set<std::string> gauge_families;
  for (const auto& [name, value] : snap.gauges) {
    std::string base;
    std::string labels;
    SplitLabels(name, &base, &labels);
    if (gauge_families.insert(base).second) {
      out += "# TYPE " + base + " gauge\n";
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    out += name + " " + buf + "\n";
  }

  for (const auto& [name, h] : snap.histograms) {
    AppendHistogram(&out, name, h);
  }
  return out;
}

std::string FormatHistogramSummaries(
    const std::map<std::string, LogHistogram>& histograms) {
  std::string out;
  for (const auto& [name, h] : histograms) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%-36s count %-8" PRIu64 " mean %-10.1f p50<=%-8" PRIu64
                  " p95<=%-8" PRIu64 " p99<=%-8" PRIu64 " max %" PRIu64 "\n",
                  name.c_str(), h.count(), h.mean(), h.ApproxQuantile(0.50),
                  h.ApproxQuantile(0.95), h.ApproxQuantile(0.99), h.max());
    out += buf;
  }
  return out;
}

}  // namespace bmr::obs
