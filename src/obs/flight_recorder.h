// Crash flight recorder (GUIDE §15): a process-global, always-armed,
// bounded ring of coarse events — task phase transitions, faults,
// recovery actions, counter samples — recorded even when `obs.trace`
// is off.  Like an aircraft FDR it never stops writing: the ring keeps
// the most recent history and a dump is a snapshot of it, so a job
// failure, tainted-reducer restart, or injected crash leaves a
// post-mortem Perfetto JSON artifact instead of just an exit code.
//
// Cost discipline: events are coarse (per task phase, per fault — not
// per record), so one mutex-guarded ring write per event is far off
// every hot path; the fine-grained span machinery stays in obs/trace.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"

namespace bmr::obs {

/// One ring entry: a closed interval (spans; notes have zero duration)
/// or a counter sample, on the recorder's own process-lifetime clock.
/// Names are dynamic strings — triggers carry failure details — which
/// is fine at flight-event rates.
struct FlightEvent {
  enum class Kind : uint8_t { kSpan, kCounter };
  Kind kind = Kind::kSpan;
  std::string name;
  std::string category;
  int64_t arg = -1;   // task / node / fault id; -1 = none
  int node = -1;      // logical node; -1 = none
  double start_s = 0;
  double end_s = 0;
  double value = 0;   // counters only
};

/// Category every RequestDump trigger event is recorded under; the
/// chaos harness greps dumped artifacts for it.
inline constexpr const char* kFlightTriggerCategory = "flight.trigger";

class FlightRecorder {
 public:
  /// The process-wide recorder, armed from first use.
  static FlightRecorder* Global();

  explicit FlightRecorder(size_t capacity = 4096);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Record a closed interval that ended now and lasted `duration_s`.
  void RecordSpan(const std::string& name, const std::string& category,
                  int64_t arg, int node, double duration_s)
      BMR_EXCLUDES(mu_);

  /// Record an instantaneous event.
  void Note(const std::string& name, const std::string& category, int64_t arg,
            int node) BMR_EXCLUDES(mu_);

  /// Record a counter sample at the current time.
  void RecordCounter(const std::string& name, double value) BMR_EXCLUDES(mu_);

  /// Mark the ring for a post-mortem dump (sticky until taken) and
  /// record a kFlightTriggerCategory event naming the reason.  `arg`
  /// identifies the failed task / node (-1 = none).
  void RequestDump(const std::string& reason, int64_t arg) BMR_EXCLUDES(mu_);

  bool dump_pending() const BMR_EXCLUDES(mu_);

  /// Claim the accumulated trigger reasons (clears the pending flag);
  /// the owner of the job boundary decides whether and where to dump.
  std::vector<std::string> TakeDumpReasons() BMR_EXCLUDES(mu_);

  /// The retained history (most recent `last_n` events; 0 = all) as
  /// Perfetto JSON on pid 3 ("bmr-flight"), parent-free spans sorted
  /// by start time — passes obs::ValidatePerfettoJson.
  std::string SnapshotJson(size_t last_n) const BMR_EXCLUDES(mu_);

  /// Write SnapshotJson(0) to `dir`/flight_<pid>_<seq>.json and return
  /// the path.  The ring is not cleared: later dumps include this
  /// history too (it is a flight recorder, not a per-job log).
  [[nodiscard]] StatusOr<std::string> DumpToDir(const std::string& dir)
      BMR_EXCLUDES(mu_);

  /// Events overwritten by ring wraparound (bounded-memory drops).
  uint64_t overwritten() const BMR_EXCLUDES(mu_);
  size_t size() const BMR_EXCLUDES(mu_);

  /// Drop all state (events, triggers, counters) — test isolation only.
  void ResetForTest() BMR_EXCLUDES(mu_);

 private:
  void Append(FlightEvent event) BMR_EXCLUDES(mu_);
  /// Events in record order, oldest first.
  std::vector<FlightEvent> Chronological(size_t last_n) const
      BMR_REQUIRES(mu_);

  const size_t capacity_;
  Stopwatch clock_;  // process-lifetime time base, never restarted

  mutable Mutex mu_;
  std::vector<FlightEvent> ring_ BMR_GUARDED_BY(mu_);
  size_t next_ BMR_GUARDED_BY(mu_) = 0;    // ring cursor
  uint64_t total_ BMR_GUARDED_BY(mu_) = 0;  // events ever recorded
  std::vector<std::string> dump_reasons_ BMR_GUARDED_BY(mu_);
  uint64_t dump_seq_ BMR_GUARDED_BY(mu_) = 0;
};

}  // namespace bmr::obs
