#include "obs/http_introspect.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace bmr::obs {
namespace {

// A scrape request is one short GET line plus a few headers.
constexpr size_t kMaxRequestBytes = 8 * 1024;

const char* StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.0 200 OK";
    case 400:
      return "HTTP/1.0 400 Bad Request";
    default:
      return "HTTP/1.0 404 Not Found";
  }
}

}  // namespace

StatusOr<std::unique_ptr<HttpIntrospectServer>> HttpIntrospectServer::Create(
    int port) {
  std::unique_ptr<HttpIntrospectServer> server(new HttpIntrospectServer());
  Status st = server->Start(port);
  if (!st.ok()) return st;
  return server;
}

Status HttpIntrospectServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 16) < 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::Internal("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  loop_ = std::make_unique<ThreadPool>(1);
  loop_->Submit([this] { Loop(); });
  return Status::Ok();
}

HttpIntrospectServer::~HttpIntrospectServer() {
  stop_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    ssize_t n = ::write(wake_fd_, &one, sizeof(one));
    (void)n;
  }
  loop_.reset();  // joins the loop thread
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void HttpIntrospectServer::Handle(const std::string& path,
                                  const std::string& content_type,
                                  Handler handler) {
  MutexLock lock(mu_);
  endpoints_[path] = Endpoint{content_type, std::move(handler)};
}

void HttpIntrospectServer::Loop() {
  epoll_event events[16];
  while (!stop_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, 16, /*timeout_ms=*/250);
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == listen_fd_) AcceptNew();
      // wake_fd_ readability only matters as a wakeup; the stop_ check
      // at the top of the loop does the rest.
    }
  }
}

void HttpIntrospectServer::AcceptNew() {
  int fd = ::accept(listen_fd_, nullptr, nullptr);
  if (fd < 0) return;
  // One short-lived connection at a time: read the request, write the
  // response, close.  Serving blocks the loop briefly, which is fine
  // for a scrape surface (and keeps the server to one thread).
  ServeConn(fd);
  ::close(fd);
}

void HttpIntrospectServer::ServeConn(int fd) {
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    if (request.size() > kMaxRequestBytes) {
      Respond(fd, 400, "text/plain", "request too large\n");
      return;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // peer closed or timed out mid-request
    request.append(buf, static_cast<size_t>(n));
  }

  // Request line: METHOD SP TARGET SP VERSION.
  size_t eol = request.find_first_of("\r\n");
  std::string line = request.substr(0, eol);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    Respond(fd, 400, "text/plain", "malformed request line\n");
    return;
  }
  std::string method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    Respond(fd, 400, "text/plain", "only GET is supported\n");
    return;
  }
  std::string path = target;
  std::string query;
  size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }

  Endpoint endpoint;
  bool found = false;
  {
    MutexLock lock(mu_);
    auto it = endpoints_.find(path);
    if (it != endpoints_.end()) {
      endpoint = it->second;
      found = true;
    }
  }
  if (!found) {
    Respond(fd, 404, "text/plain", "not found\n");
    return;
  }
  Respond(fd, 200, endpoint.content_type, endpoint.handler(query));
}

void HttpIntrospectServer::Respond(int fd, int code,
                                   const std::string& content_type,
                                   const std::string& body) {
  std::string response = std::string(StatusLine(code)) +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  size_t sent = 0;
  while (sent < response.size()) {
    ssize_t n =
        ::send(fd, response.data() + sent, response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace bmr::obs
