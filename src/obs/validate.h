// Structural validators for the exporter outputs, used by the
// `check.sh obs` leg (via `bmr_trace --check`) and by tests.  They
// parse the serialized artifacts back — not the in-memory structures —
// so a formatting regression in the exporters cannot hide.
#pragma once

#include <string>

#include "common/status.h"

namespace bmr::obs {

/// Validate a Chrome/Perfetto trace-event JSON document:
///   - well-formed JSON with a `traceEvents` array;
///   - every "X" event has numeric ts >= 0 and dur >= 0;
///   - "X" event timestamps are monotonically non-decreasing;
///   - every span whose args.parent names another span in the document
///     lies inside that parent's [ts, ts+dur] interval (small epsilon
///     for rounding);
///   - at least `min_spans` "X" events when min_spans > 0;
///   - with `require_parents`, every nonzero args.parent must name a
///     span present in the document — an orphan is an error, not a
///     skip.  With wire propagation (GUIDE §15) a complete single-job
///     trace has no orphans; leave it off for partial snapshots.
[[nodiscard]] Status ValidatePerfettoJson(const std::string& json,
                                          size_t min_spans = 0,
                                          bool require_parents = false);

/// Validate that `json` parses as one complete JSON document (the
/// /jobs introspection snapshot; no schema beyond well-formedness).
[[nodiscard]] Status ValidateJsonText(const std::string& json);

/// Validate a Prometheus text exposition:
///   - every line is a comment, blank, or `name{labels} value`;
///   - every series name starts with `bmr_` and, after stripping the
///     _bucket/_sum/_count suffix, ends in a sanctioned unit suffix
///     (_us/_bytes/_seconds/_total) — the GUIDE §10 naming convention;
///   - every histogram family has _sum, _count, a le="+Inf" bucket
///     equal to _count, and non-decreasing cumulative buckets.
[[nodiscard]] Status ValidatePrometheusText(const std::string& text);

}  // namespace bmr::obs
