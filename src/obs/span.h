// Plain-data trace types shared by the tracer, the exporters, and the
// validators.  A Span is one closed interval on one thread lane,
// causally linked to its parent by id — the job → task →
// fetch/batch/store-op hierarchy of docs/GUIDE.md §10.  A TraceLog is
// everything one run recorded, ready for export.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bmr::obs {

/// Tracer-unique span identifier; 0 means "no span".
using SpanId = uint32_t;

/// The trace-context block carried on the wire (BMRF optional trailer,
/// GUIDE §15): enough for a receiving node to open handler spans under
/// the sender's open span, stitching one causal tree across address
/// spaces.  `trace_id` identifies the recording tracer (0 = no context
/// / untraced frame), `parent_span` is the sender's innermost open
/// span, `flags` bit 0 = sampled.
struct TraceContext {
  uint64_t trace_id = 0;
  SpanId parent_span = 0;
  uint8_t flags = 0;

  bool valid() const { return trace_id != 0; }
};

/// TraceContext::flags bit 0: the sender was actively recording.
inline constexpr uint8_t kTraceFlagSampled = 0x1;

/// One completed span.  `name` and `category` must be static-lifetime
/// strings (metric/span name constants), so recording a span never
/// allocates.
struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root (no parent)
  const char* name = "";
  const char* category = "";
  int pid = 1;    // Perfetto process lane (1 = engine threads)
  int tid = 0;    // tracer-assigned thread lane
  int64_t arg = -1;  // task / mapper / partition id; -1 = none
  double start_s = 0;  // seconds on the owning job clock
  double end_s = 0;
};

/// Display name of one (pid, tid) lane.
struct TrackInfo {
  int pid = 1;
  int tid = 0;
  std::string name;
};

/// One sample of a numeric counter track (Perfetto "C" events — e.g.
/// the per-reducer heap curve of Fig. 5).
struct CounterSample {
  std::string name;
  int pid = 1;
  int tid = 0;
  double t_s = 0;
  double value = 0;
};

/// Everything one run traced.  Exporters consume this; the engine
/// fills it from the tracer (fine-grained spans) and the timeline
/// (task-phase lanes), and simmr fills it from simulated TaskEvents —
/// both render through the same pipeline.
struct TraceLog {
  std::vector<Span> spans;
  std::vector<TrackInfo> tracks;
  std::vector<CounterSample> counters;

  bool empty() const { return spans.empty() && counters.empty(); }
};

}  // namespace bmr::obs
