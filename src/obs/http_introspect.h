// Live introspection endpoints (GUIDE §15): a minimal HTTP/1.0 scrape
// server on its own 127.0.0.1 listener, riding a private epoll loop on
// one pool thread.  It serves GET requests against registered paths —
// /metrics (Prometheus exposition), /jobs (pool-tree JSON), /trace
// (flight-recorder snapshot) — one response per connection, then
// close.  This is deliberately not a web server: no keep-alive, no
// chunking, bounded request size, loopback only; it is the first
// externally reachable surface and the groundwork for the service
// wire API (ROADMAP item 2).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "concurrency/thread_pool.h"

namespace bmr::obs {

class HttpIntrospectServer {
 public:
  /// A handler receives the query string (text after '?', possibly
  /// empty) and returns the response body.  Handlers run on the server
  /// loop thread; they must not block on it re-entering.
  using Handler = std::function<std::string(const std::string& query)>;

  /// Bind 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and
  /// start serving.
  [[nodiscard]] static StatusOr<std::unique_ptr<HttpIntrospectServer>> Create(
      int port);

  ~HttpIntrospectServer();

  HttpIntrospectServer(const HttpIntrospectServer&) = delete;
  HttpIntrospectServer& operator=(const HttpIntrospectServer&) = delete;

  /// Register GET `path` (exact match).  Unregistered paths get 404.
  void Handle(const std::string& path, const std::string& content_type,
              Handler handler) BMR_EXCLUDES(mu_);

  /// The bound TCP port (resolved when created with port 0).
  int port() const { return port_; }

 private:
  HttpIntrospectServer() = default;

  [[nodiscard]] Status Start(int port);
  void Loop();
  void AcceptNew();
  void ServeConn(int fd);
  void Respond(int fd, int code, const std::string& content_type,
               const std::string& body);

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: nudges the loop awake for shutdown
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::unique_ptr<ThreadPool> loop_;

  mutable Mutex mu_;
  struct Endpoint {
    std::string content_type;
    Handler handler;
  };
  std::map<std::string, Endpoint> endpoints_ BMR_GUARDED_BY(mu_);
};

}  // namespace bmr::obs
