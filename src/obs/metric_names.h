// The central registry of observability metric names.  Every latency
// histogram and every Prometheus-facing series name in src/ lives here
// (scripts/lint.sh check 7 bans raw string literals at Record/Add call
// sites), so one grep finds every producer of a metric and renames
// cannot silently fork a series.
//
// Naming convention (docs/GUIDE.md §10): bmr_<subsystem>_<name>_<unit>
// where <unit> is one of us / bytes / seconds / total (counters).
#pragma once

namespace bmr::obs {

// ---- Latency histograms (unit: microseconds) -------------------------
/// Shuffle fetch round-trip: one FetchSegment RPC, reduce side.
inline constexpr const char* kHShuffleFetchRttUs = "bmr_shuffle_fetch_rtt_us";
/// Reduce-thread wait on the shuffle FIFO (BoundedQueue::PopAll).
inline constexpr const char* kHShuffleQueueWaitUs =
    "bmr_shuffle_queue_wait_us";
/// Fetcher-thread wait pushing a batch into a full FIFO.
inline constexpr const char* kHShuffleQueuePushWaitUs =
    "bmr_shuffle_queue_push_wait_us";
/// One incremental Reduce invocation (barrier-less Update, or one
/// grouped Reduce call in barrier mode).  Sampled.
inline constexpr const char* kHReduceInvokeUs = "bmr_reduce_invoke_us";
/// Partial-store point ops (barrier-less fold).  Sampled.
inline constexpr const char* kHStoreGetUs = "bmr_store_get_us";
inline constexpr const char* kHStorePutUs = "bmr_store_put_us";
/// One spill-file flush of the spill-merge store.
inline constexpr const char* kHStoreSpillUs = "bmr_store_spill_us";
/// One transport Call, end to end (handler included): one series per
/// Transport implementation, as a labeled family.  Histogram names may
/// carry a label
/// suffix in braces; the exporter folds it into each _bucket/_sum/
/// _count line (obs/export.cc).
inline constexpr const char* kHRpcCallInprocUs =
    "bmr_rpc_call_us{transport=\"inproc\"}";
inline constexpr const char* kHRpcCallTcpUs =
    "bmr_rpc_call_us{transport=\"tcp\"}";
/// One loopback TCP connect (nonblocking connect to writable), client
/// side of the TCP transport.
inline constexpr const char* kHNetConnectUs = "bmr_net_connect_us";
/// One frame cut + decoded off a connection's read buffer, event-loop
/// side of the TCP transport.
inline constexpr const char* kHNetFrameDecodeUs = "bmr_net_frame_decode_us";
/// One reducer part-file write (serialize + DFS append + close).
inline constexpr const char* kHOutputWriteUs = "bmr_output_write_us";
/// One map attempt's segments through the block codec (all partitions,
/// async encoder thread — see mr/encoding_pipeline.h).
inline constexpr const char* kHCodecEncodeUs = "bmr_codec_encode_us";
/// One fetched segment's checksum verify + decompress, fetcher thread.
inline constexpr const char* kHCodecDecodeUs = "bmr_codec_decode_us";

// ---- Prometheus series emitted by the exporters ----------------------
/// Engine counters are exported as bmr_job_<counter>_total; this is
/// the prefix, not a full name.
inline constexpr const char* kPromJobCounterPrefix = "bmr_job_";
/// Fired fault counters (fault_injected_<kind>) export as one labeled
/// family: bmr_faults_injected_total{kind="<kind>"}.
inline constexpr const char* kPromFaultsInjected = "bmr_faults_injected_total";
/// The raw counter prefix the engine records fault firings under.
inline constexpr const char* kCtrFaultInjectedPrefix = "fault_injected_";
/// Times Transport::Register overwrote a live handler (DFS restarts
/// do this deliberately; anything else is a registration bug).
inline constexpr const char* kPromRpcHandlerReregistered =
    "bmr_rpc_handler_reregistered_total";
/// Job-level gauges.
inline constexpr const char* kPromJobElapsedSeconds =
    "bmr_job_elapsed_seconds";
inline constexpr const char* kPromJobFirstMapDoneSeconds =
    "bmr_job_first_map_done_seconds";
inline constexpr const char* kPromJobLastMapDoneSeconds =
    "bmr_job_last_map_done_seconds";
inline constexpr const char* kPromReducerHeapPeakBytes =
    "bmr_reducer_heap_peak_bytes";
/// Shuffle data-plane gauges (GUIDE §13): bytes before/after the block
/// codec for the job's published map output...
inline constexpr const char* kPromCodecRawBytes = "bmr_codec_raw_bytes";
inline constexpr const char* kPromCodecWireBytes = "bmr_codec_wire_bytes";
/// ...and the pooled-memory families (process-lifetime monotonic
/// totals, snapshotted at job end: deltas between runs are the
/// per-job view).
inline constexpr const char* kPromArenaAllocatedBytes =
    "bmr_arena_allocated_bytes";
inline constexpr const char* kPromArenaChunkReuseTotal =
    "bmr_arena_chunk_reuse_total";
inline constexpr const char* kPromArenaBufferReuseTotal =
    "bmr_arena_buffer_reuse_total";
inline constexpr const char* kPromArenaCachedBytes = "bmr_arena_cached_bytes";

// ---- Observability self-metrics (GUIDE §15) --------------------------
/// Spans discarded at the tracer's central-log cap
/// (TracerOptions::max_spans) — nonzero means the trace is a sampled
/// prefix, not the whole run.
inline constexpr const char* kPromObsSpansDropped =
    "bmr_obs_spans_dropped_total";
/// Flight-recorder post-mortem artifacts written at job end.
inline constexpr const char* kPromObsFlightDumps =
    "bmr_obs_flight_dumps_total";

// ---- Multi-tenant job service (src/service/, GUIDE §14) --------------
// Per-pool families: the service composes each series name with a
// {pool="<name>"} label block before inserting it into its
// MetricsSnapshot; the exporter passes bmr_-prefixed counters through
// verbatim and strips the labels for the family TYPE line.
/// Jobs admitted into a pool's queue.
inline constexpr const char* kPromServiceJobsSubmitted =
    "bmr_service_jobs_submitted_total";
/// Jobs that ran to a successful completion.
inline constexpr const char* kPromServiceJobsCompleted =
    "bmr_service_jobs_completed_total";
/// Jobs that ran and failed (engine status not ok).
inline constexpr const char* kPromServiceJobsFailed =
    "bmr_service_jobs_failed_total";
/// Submissions bounced by admission control (pool queue full, service
/// saturated, unknown pool, shutdown).
inline constexpr const char* kPromServiceJobsRejected =
    "bmr_service_jobs_rejected_total";
/// Queued jobs evicted by fair-share preemption to make room for an
/// under-share pool's submission.
inline constexpr const char* kPromServiceJobsPreempted =
    "bmr_service_jobs_preempted_total";
/// Submit-to-completion latency, per pool (queue wait included).
inline constexpr const char* kHServiceJobLatencyUs =
    "bmr_service_job_latency_us";
/// Submit-to-start queue wait, per pool.
inline constexpr const char* kHServiceQueueWaitUs =
    "bmr_service_queue_wait_us";
/// Service-wide point-in-time occupancy gauges.
inline constexpr const char* kPromServiceJobsRunning =
    "bmr_service_jobs_running_total";
inline constexpr const char* kPromServiceJobsQueued =
    "bmr_service_jobs_queued_total";

// ---- Span names ------------------------------------------------------
// Spans are display labels, not series names, but keeping them here
// keeps the taxonomy (GUIDE §10) in one place.
inline constexpr const char* kSpanJob = "job";
inline constexpr const char* kSpanMapTask = "task.map";
inline constexpr const char* kSpanReduceTask = "task.reduce";
inline constexpr const char* kSpanShuffleFetch = "shuffle.fetch";
inline constexpr const char* kSpanReduceBatch = "reduce.batch";
inline constexpr const char* kSpanReduceSort = "reduce.sort";
inline constexpr const char* kSpanStoreSpill = "store.spill";
inline constexpr const char* kSpanOutputWrite = "task.output";
/// Server-side execution of one RPC handler, opened under the wire
/// trace context's propagated parent (GUIDE §15) — the cross-node
/// stitch point.  arg = destination node.
inline constexpr const char* kSpanRpcHandler = "rpc.handler";

}  // namespace bmr::obs
