// Trace/metrics exporters: Chrome/Perfetto `trace_event` JSON and
// Prometheus text exposition.  Both consume plain obs types, so the
// real engine and simmr render through the same pipeline (each side
// adapts its JobMetrics via mr/obs_export.h).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/histogram.h"
#include "obs/span.h"

namespace bmr::obs {

/// Everything the Prometheus exporter needs: raw engine counters
/// (mapped to series names by PrometheusText — see obs/metric_names.h
/// for the policy), latency histograms keyed by their series name, and
/// job-level gauges already carrying their series name.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, LogHistogram> histograms;
  std::map<std::string, double> gauges;
};

/// Serialize a TraceLog as Chrome trace-event JSON ("X" complete
/// events + "M" process/thread metadata + "C" counter tracks), loadable
/// in Perfetto / chrome://tracing.  Spans are sorted by start time, so
/// event timestamps are monotonic.  Timestamps are microseconds on the
/// job clock.
std::string PerfettoTraceJson(const TraceLog& log);

/// Serialize a MetricsSnapshot as Prometheus text exposition v0.0.4.
/// Mapping policy: counter `fault_injected_<kind>` becomes the labeled
/// family bmr_faults_injected_total{kind="<kind>"}; a counter already
/// carrying the bmr_ prefix is a full series name (labels allowed) and
/// passes through verbatim; every other counter `<name>` becomes
/// bmr_job_<name>_total; histograms emit _bucket{le=...}/_sum/_count
/// on their own (already bmr_-prefixed) name; gauges pass through.
/// TYPE lines always name the bare family (labels stripped), once per
/// family.
std::string PrometheusText(const MetricsSnapshot& snap);

/// Human-readable one-line-per-histogram summary (count, mean, p50,
/// p95, p99, max) for run reports; the p* values are log-bucket upper
/// bounds (see GUIDE §10 for how to read them).
std::string FormatHistogramSummaries(
    const std::map<std::string, LogHistogram>& histograms);

}  // namespace bmr::obs
