#include "obs/trace.h"

#include <utility>

namespace bmr::obs {
namespace {

// Monotonic tracer generation: the thread-local cache below is keyed
// on (tracer pointer, generation), so a Tracer constructed at a
// recycled address can never alias a dead tracer's buffer.
std::atomic<uint64_t> g_tracer_generation{0};

struct TlsCache {
  const void* tracer = nullptr;
  uint64_t generation = 0;
  void* buffer = nullptr;
};
thread_local TlsCache t_buffer_cache;

// Innermost open ScopedSpan on this thread (implicit parent chain).
thread_local SpanId t_current_span = 0;

}  // namespace

Tracer::Tracer()
    : generation_(g_tracer_generation.fetch_add(1,
                                                std::memory_order_relaxed) +
                  1) {}

Tracer::~Tracer() = default;

void Tracer::Enable(const TracerOptions& options) {
  buffer_spans_ = options.buffer_spans > 0 ? options.buffer_spans : 1;
  max_spans_ = options.max_spans > 0 ? options.max_spans : 1;
  enabled_.store(true, std::memory_order_release);
}

TraceContext Tracer::CurrentContext() const {
  TraceContext ctx;
#if !defined(BMR_OBS_COMPILED_OUT)
  if (!enabled()) return ctx;
  ctx.trace_id = generation_;
  SpanId current = t_current_span;
  ctx.parent_span = current != 0 ? current : root_span();
  ctx.flags = kTraceFlagSampled;
#endif
  return ctx;
}

SpanId Tracer::PropagatedParent(const TraceContext& ctx) const {
#if defined(BMR_OBS_COMPILED_OUT)
  (void)ctx;
  return 0;
#else
  if (!enabled() || !ctx.valid() || ctx.trace_id != generation_) return 0;
  return ctx.parent_span;
#endif
}

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  TlsCache& cache = t_buffer_cache;
  if (cache.tracer == this && cache.generation == generation_) {
    return static_cast<ThreadBuffer*>(cache.buffer);
  }
  auto buffer = std::make_unique<ThreadBuffer>();
  ThreadBuffer* raw = buffer.get();
  {
    MutexLock lock(registry_mu_);
    raw->tid = next_tid_++;
    buffers_.push_back(std::move(buffer));
  }
  cache.tracer = this;
  cache.generation = generation_;
  cache.buffer = raw;
  return raw;
}

void Tracer::EmitSpan(Span span) {
#if defined(BMR_OBS_COMPILED_OUT)
  (void)span;
  return;
#else
  if (!enabled()) return;
  ThreadBuffer* buffer = LocalBuffer();
  span.tid = buffer->tid;
  std::vector<Span> overflow;
  {
    MutexLock lock(buffer->mu);
    buffer->ring.push_back(span);
    if (buffer->ring.size() >= buffer_spans_) {
      overflow.swap(buffer->ring);
      buffer->ring.reserve(buffer_spans_);
    }
  }
  if (!overflow.empty()) {
    // Central lock taken with the buffer lock already released — the
    // two never nest, so neither order edge exists.
    FlushToCentral(&overflow);
  }
#endif
}

void Tracer::FlushToCentral(std::vector<Span>* spans) {
  size_t dropped = 0;
  {
    MutexLock lock(central_mu_);
    size_t room =
        central_.size() < max_spans_ ? max_spans_ - central_.size() : 0;
    size_t take = spans->size() < room ? spans->size() : room;
    central_.insert(central_.end(), spans->begin(), spans->begin() + take);
    dropped = spans->size() - take;
  }
  if (dropped > 0) {
    dropped_spans_.fetch_add(dropped, std::memory_order_relaxed);
  }
  spans->clear();
}

void Tracer::RecordLatency(const char* name, uint64_t micros) {
#if defined(BMR_OBS_COMPILED_OUT)
  (void)name;
  (void)micros;
#else
  if (!enabled()) return;
  MutexLock lock(hist_mu_);
  histograms_[name].Add(micros);
#endif
}

void Tracer::MergeHistogram(const char* name, const LogHistogram& h) {
#if defined(BMR_OBS_COMPILED_OUT)
  (void)name;
  (void)h;
#else
  if (!enabled() || h.count() == 0) return;
  MutexLock lock(hist_mu_);
  histograms_[name].Merge(h);
#endif
}

TraceLog Tracer::CollectTrace() {
  TraceLog log;
  std::vector<ThreadBuffer*> buffers;
  {
    MutexLock lock(registry_mu_);
    buffers.reserve(buffers_.size());
    for (const auto& b : buffers_) buffers.push_back(b.get());
    for (int tid = 0; tid < next_tid_; ++tid) {
      log.tracks.push_back({/*pid=*/1, tid, "worker-" + std::to_string(tid)});
    }
  }
  // Flush each thread's ring into the central log.  Concurrent
  // recorders may add spans after their buffer is drained; those show
  // up in the next snapshot — CollectTrace is a consistent prefix, not
  // a barrier.
  for (ThreadBuffer* buffer : buffers) {
    std::vector<Span> drained;
    {
      MutexLock lock(buffer->mu);
      drained.swap(buffer->ring);
    }
    if (!drained.empty()) {
      FlushToCentral(&drained);
    }
  }
  {
    MutexLock lock(central_mu_);
    log.spans = central_;
  }
  return log;
}

std::map<std::string, LogHistogram> Tracer::SnapshotHistograms() const {
  MutexLock lock(hist_mu_);
  return histograms_;
}

SpanId CurrentSpan() { return t_current_span; }

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name, const char* category,
                       int64_t arg, SpanId parent) {
#if !defined(BMR_OBS_COMPILED_OUT)
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  span_.id = tracer->NextSpanId();
  span_.parent = parent != 0
                     ? parent
                     : (t_current_span != 0 ? t_current_span
                                            : tracer->root_span());
  span_.name = name;
  span_.category = category;
  span_.arg = arg;
  span_.start_s = tracer->Now();
  prev_current_ = t_current_span;
  t_current_span = span_.id;
#else
  (void)tracer;
  (void)name;
  (void)category;
  (void)arg;
  (void)parent;
#endif
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  t_current_span = prev_current_;
  span_.end_s = tracer_->Now();
  tracer_->EmitSpan(span_);
}

}  // namespace bmr::obs
