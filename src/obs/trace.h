// Job-scoped tracing + latency-metrics collector.
//
// One Tracer per job run (owned by the job's MetricsRegistry).  Spans
// are recorded into per-thread ring buffers (TraceBuffer) so the hot
// path takes only an uncontended leaf lock; full buffers flush into
// the tracer's central log, and CollectTrace() drains everything for
// export.  Latency samples land in named LogHistograms.
//
// Cost discipline: every recording entry point is gated on enabled()
// — a null check plus one relaxed atomic load when tracing is off —
// and the whole layer compiles to nothing when BMR_OBS_COMPILED_OUT
// is defined (the "near-zero when disabled" knob of ISSUE 5; the
// runtime gate is the `obs.trace` job-config key).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "obs/span.h"

namespace bmr::obs {

struct TracerOptions {
  /// Per-thread ring capacity in spans; a full ring flushes to the
  /// central log (one extra lock per `buffer_spans` spans).
  size_t buffer_spans = 4096;
  /// Cap on centrally retained spans; overflow is dropped and counted
  /// (exported as bmr_obs_spans_dropped_total).  Generous by default —
  /// the cap exists so a runaway traced job degrades to counted span
  /// loss instead of unbounded memory.
  size_t max_spans = 1 << 20;
};

class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Turn recording on.  Must happen-before concurrent recording (the
  /// engine enables before tasks are submitted).
  void Enable(const TracerOptions& options = {});

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// The tracer's time base; the owner restarts it together with the
  /// job clock so spans and TaskEvents share one origin.  Unsynchronized
  /// like Stopwatch: restart happens-before concurrent recording.
  void RestartClock() { clock_.Restart(); }
  double Now() const { return clock_.ElapsedSeconds(); }

  /// Next tracer-unique span id (never 0).
  SpanId NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// The job's root span, parent of every task span (set once by the
  /// engine before tasks launch).
  void SetRootSpan(SpanId id) { root_span_.store(id, std::memory_order_relaxed); }
  SpanId root_span() const { return root_span_.load(std::memory_order_relaxed); }

  /// Process-unique nonzero id naming this tracer on the wire (the
  /// trace-context block's trace_id).  Stable for the tracer's life.
  uint64_t trace_id() const { return generation_; }

  /// The context an outgoing RPC should carry: this tracer's trace id
  /// plus the calling thread's innermost open span (falling back to the
  /// root span).  Invalid (trace_id 0) when disabled, so untraced runs
  /// put nothing on the wire.
  TraceContext CurrentContext() const;

  /// Resolve a received wire context into an explicit span parent.
  /// Returns 0 (let ScopedSpan fall back to thread-current/root) for
  /// invalid contexts or frames stamped by a different tracer — a stale
  /// frame from an earlier job must not graft onto this job's tree.
  SpanId PropagatedParent(const TraceContext& ctx) const;

  /// Spans discarded at the central-log cap (TracerOptions::max_spans).
  uint64_t dropped_spans() const {
    return dropped_spans_.load(std::memory_order_relaxed);
  }

  /// Record one completed span.  `span.tid` is overwritten with the
  /// calling thread's lane.  No-op when disabled.
  void EmitSpan(Span span) BMR_EXCLUDES(registry_mu_, central_mu_);

  /// Record one latency sample into the named histogram.  `name` must
  /// be a static-lifetime constant from obs/metric_names.h.  No-op when
  /// disabled.
  void RecordLatency(const char* name, uint64_t micros)
      BMR_EXCLUDES(hist_mu_);

  /// Fold a locally-aggregated histogram into the named one (bulk
  /// variant of RecordLatency for single-threaded hot loops).
  void MergeHistogram(const char* name, const LogHistogram& h)
      BMR_EXCLUDES(hist_mu_);

  /// Flush every thread buffer and return a copy of all spans recorded
  /// so far plus the per-thread track list.  Safe to call repeatedly
  /// (online snapshots); spans accumulate in the central log.
  TraceLog CollectTrace() BMR_EXCLUDES(registry_mu_, central_mu_);

  std::map<std::string, LogHistogram> SnapshotHistograms() const
      BMR_EXCLUDES(hist_mu_);

 private:
  friend class ScopedSpan;

  struct ThreadBuffer {
    Mutex mu;
    int tid = 0;
    std::vector<Span> ring BMR_GUARDED_BY(mu);
  };

  /// This thread's buffer, registering it on first use.  Cached in a
  /// thread-local keyed by (tracer pointer, generation) so a recycled
  /// Tracer address can never alias a stale buffer.
  ThreadBuffer* LocalBuffer() BMR_EXCLUDES(registry_mu_);

  const uint64_t generation_;
  Stopwatch clock_;
  /// Append spans to the central log, dropping (and counting) past the
  /// max_spans_ cap.  Consumes the input.
  void FlushToCentral(std::vector<Span>* spans) BMR_EXCLUDES(central_mu_);

  std::atomic<bool> enabled_{false};
  std::atomic<SpanId> next_id_{0};
  std::atomic<SpanId> root_span_{0};
  std::atomic<uint64_t> dropped_spans_{0};
  size_t buffer_spans_ = 4096;  // written by Enable, before recording
  size_t max_spans_ = 1 << 20;  // written by Enable, before recording

  mutable Mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      BMR_GUARDED_BY(registry_mu_);
  int next_tid_ BMR_GUARDED_BY(registry_mu_) = 0;

  mutable Mutex central_mu_;
  std::vector<Span> central_ BMR_GUARDED_BY(central_mu_);

  mutable Mutex hist_mu_;
  std::map<std::string, LogHistogram> histograms_ BMR_GUARDED_BY(hist_mu_);
};

/// The calling thread's innermost open ScopedSpan (0 = none): the
/// implicit parent for same-thread nesting.
SpanId CurrentSpan();

/// RAII span: opens on construction, records on destruction.  Parent
/// defaults to the thread's current span, falling back to the tracer's
/// root span (cross-thread task spans pass an explicit parent).
/// Constructing with a null or disabled tracer costs two branches.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, const char* category,
             int64_t arg = -1, SpanId parent = 0);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// This span's id, for cross-thread children; 0 when not recording.
  SpanId id() const { return span_.id; }

 private:
  Tracer* tracer_ = nullptr;  // null when not recording
  Span span_;
  SpanId prev_current_ = 0;  // restored on close (nesting stack)
};

/// RAII latency sample: times construction → destruction into the
/// named histogram.  Null/disabled tracer = two branches.
class LatencyTimer {
 public:
  LatencyTimer(Tracer* tracer, const char* name)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name) {
#if defined(BMR_OBS_COMPILED_OUT)
    tracer_ = nullptr;
#endif
    if (tracer_ != nullptr) watch_.Restart();
  }
  ~LatencyTimer() {
    if (tracer_ != nullptr) {
      tracer_->RecordLatency(name_,
                             static_cast<uint64_t>(watch_.ElapsedMicros()));
    }
  }

  LatencyTimer(const LatencyTimer&) = delete;
  LatencyTimer& operator=(const LatencyTimer&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  Stopwatch watch_;
};

}  // namespace bmr::obs
