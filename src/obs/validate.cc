#include "obs/validate.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

namespace bmr::obs {
namespace {

// ---- Minimal JSON parser --------------------------------------------
// Enough of RFC 8259 for the trace artifacts (objects, arrays, strings
// with the escapes our exporter emits, numbers, literals).  Rejects
// trailing garbage.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Status Parse(JsonValue* out) {
    Status s = ParseValue(out);
    if (!s.ok()) return s;
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return Status::Ok();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Fail(const std::string& what) {
    return Status::InvalidArgument(what + " at offset " +
                                   std::to_string(pos_));
  }

  Status ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
        return ParseLiteral(out, c == 't');
      case 'n':
        if (text_.compare(pos_, 4, "null") != 0) return Fail("bad literal");
        pos_ += 4;
        out->kind = JsonValue::Kind::kNull;
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(JsonValue* out, bool value) {
    const char* word = value ? "true" : "false";
    size_t len = value ? 4 : 5;
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    out->kind = JsonValue::Kind::kBool;
    out->b = value;
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected value");
    try {
      size_t consumed = 0;
      out->num = std::stod(text_.substr(start, pos_ - start), &consumed);
      if (consumed != pos_ - start) return Fail("bad number");
    } catch (...) {
      return Fail("bad number");
    }
    out->kind = JsonValue::Kind::kNumber;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
          case '\\':
          case '/':
            *out += e;
            break;
          case 'n':
            *out += '\n';
            break;
          case 't':
            *out += '\t';
            break;
          case 'r':
            *out += '\r';
            break;
          case 'b':
            *out += '\b';
            break;
          case 'f':
            *out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            // Validate hex; keep the raw escape (validators only compare
            // ASCII names, so fidelity of non-ASCII is not needed).
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
                return Fail("bad \\u escape");
              }
            }
            *out += '?';
            pos_ += 4;
            break;
          }
          default:
            return Fail("bad escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  Status ParseArray(JsonValue* out) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      JsonValue elem;
      Status s = ParseValue(&elem);
      if (!s.ok()) return s;
      out->array.push_back(std::move(elem));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      char c = text_[pos_++];
      if (c == ']') return Status::Ok();
      if (c != ',') return Fail("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_++] != ':') {
        return Fail("expected ':'");
      }
      JsonValue value;
      s = ParseValue(&value);
      if (!s.ok()) return s;
      out->object.emplace(std::move(key), std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      char c = text_[pos_++];
      if (c == '}') return Status::Ok();
      if (c != ',') return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

double NumberField(const JsonValue& obj, const std::string& key,
                   double missing) {
  const JsonValue* v = obj.Find(key);
  return v != nullptr && v->kind == JsonValue::Kind::kNumber ? v->num : missing;
}

}  // namespace

Status ValidatePerfettoJson(const std::string& json, size_t min_spans,
                            bool require_parents) {
  JsonValue root;
  Status s = JsonParser(json).Parse(&root);
  if (!s.ok()) return s;
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("top level is not an object");
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("missing traceEvents array");
  }

  struct Interval {
    double ts = 0;
    double end = 0;
  };
  std::map<int64_t, Interval> by_span_id;
  struct PendingEdge {
    int64_t span = 0;
    int64_t parent = 0;
    Interval iv;
  };
  std::vector<PendingEdge> edges;

  size_t x_events = 0;
  double last_ts = -1;
  for (const JsonValue& ev : events->array) {
    if (ev.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("traceEvents element is not an object");
    }
    const JsonValue* ph = ev.Find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString) {
      return Status::InvalidArgument("event missing ph");
    }
    if (ph->str != "X") continue;
    ++x_events;
    double ts = NumberField(ev, "ts", -1);
    double dur = NumberField(ev, "dur", -1);
    if (ts < 0) return Status::InvalidArgument("X event with ts < 0");
    if (dur < 0) return Status::InvalidArgument("X event with dur < 0");
    if (ts < last_ts) {
      return Status::InvalidArgument("non-monotonic ts: " +
                                     std::to_string(ts) + " after " +
                                     std::to_string(last_ts));
    }
    last_ts = ts;
    const JsonValue* args = ev.Find("args");
    if (args == nullptr || args->kind != JsonValue::Kind::kObject) continue;
    int64_t span = static_cast<int64_t>(NumberField(*args, "span", 0));
    int64_t parent = static_cast<int64_t>(NumberField(*args, "parent", 0));
    Interval iv{ts, ts + dur};
    if (span != 0) by_span_id[span] = iv;
    if (parent != 0) edges.push_back({span, parent, iv});
  }

  // Parent containment with a rounding epsilon: children printed at
  // millisecond-of-a-microsecond precision can stick out by one ulp of
  // the %.3f format.
  constexpr double kEps = 0.002;  // µs
  for (const PendingEdge& e : edges) {
    auto it = by_span_id.find(e.parent);
    if (it == by_span_id.end()) {
      if (require_parents) {
        return Status::InvalidArgument(
            "orphan span " + std::to_string(e.span) + ": parent " +
            std::to_string(e.parent) + " never appears in the document");
      }
      continue;  // parent flushed in another doc
    }
    if (e.iv.ts + kEps < it->second.ts || e.iv.end > it->second.end + kEps) {
      std::ostringstream oss;
      oss << "span " << e.span << " [" << e.iv.ts << "," << e.iv.end
          << ") escapes parent " << e.parent << " [" << it->second.ts << ","
          << it->second.end << ")";
      return Status::InvalidArgument(oss.str());
    }
  }

  if (x_events < min_spans) {
    return Status::InvalidArgument("only " + std::to_string(x_events) +
                                   " spans, expected at least " +
                                   std::to_string(min_spans));
  }
  return Status::Ok();
}

Status ValidateJsonText(const std::string& json) {
  JsonValue root;
  return JsonParser(json).Parse(&root);
}

namespace {

bool HasSanctionedUnit(const std::string& base) {
  for (const char* unit : {"_us", "_bytes", "_seconds", "_total"}) {
    size_t len = std::string(unit).size();
    if (base.size() > len && base.compare(base.size() - len, len, unit) == 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

Status ValidatePrometheusText(const std::string& text) {
  struct HistState {
    bool has_sum = false;
    bool has_count = false;
    bool has_inf = false;
    double count = 0;
    double inf_bucket = 0;
    double last_cumulative = -1;
  };
  std::map<std::string, HistState> hists;

  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    auto fail = [&](const std::string& what) {
      return Status::InvalidArgument("line " + std::to_string(lineno) + ": " +
                                     what + ": " + line);
    };

    size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      return fail("expected 'name value'");
    }
    std::string series = line.substr(0, space);
    std::string value_str = line.substr(space + 1);
    char* end = nullptr;
    double value = std::strtod(value_str.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad sample value");

    std::string name = series;
    std::string labels;
    size_t brace = series.find('{');
    if (brace != std::string::npos) {
      if (series.back() != '}') return fail("unterminated label set");
      name = series.substr(0, brace);
      labels = series.substr(brace + 1, series.size() - brace - 2);
    }
    for (char c : name) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
            c == ':')) {
        return fail("invalid metric name character");
      }
    }
    if (name.rfind("bmr_", 0) != 0) return fail("name must start with bmr_");

    // Strip the histogram-series suffix before the unit check and fold
    // the sample into its family's coherence state.
    std::string base = name;
    auto strip = [&](const char* suffix) {
      std::string s(suffix);
      if (base.size() > s.size() &&
          base.compare(base.size() - s.size(), s.size(), s) == 0) {
        base = base.substr(0, base.size() - s.size());
        return true;
      }
      return false;
    };
    if (strip("_bucket")) {
      // `le` must be the last label; any labels before it (e.g. the
      // transport label on bmr_rpc_call_us) are part of the family
      // key, so differently-labeled series validate independently.
      size_t le_pos = labels.rfind("le=\"");
      bool le_is_last =
          le_pos != std::string::npos && labels.back() == '"' &&
          (le_pos == 0 || labels[le_pos - 1] == ',');
      if (!le_is_last) return fail("_bucket without trailing le label");
      std::string le = labels.substr(le_pos + 4, labels.size() - le_pos - 5);
      std::string family =
          le_pos == 0 ? base : base + "{" + labels.substr(0, le_pos - 1) + "}";
      HistState& st = hists[family];
      if (le == "+Inf") {
        st.has_inf = true;
        st.inf_bucket = value;
      } else if (value < st.last_cumulative) {
        return fail("cumulative bucket counts decreased");
      }
      if (le != "+Inf") st.last_cumulative = value;
    } else if (strip("_sum")) {
      hists[labels.empty() ? base : base + "{" + labels + "}"].has_sum = true;
    } else if (strip("_count")) {
      HistState& st =
          hists[labels.empty() ? base : base + "{" + labels + "}"];
      st.has_count = true;
      st.count = value;
    }
    if (!HasSanctionedUnit(base)) {
      return fail("metric '" + base +
                  "' lacks a unit suffix (_us/_bytes/_seconds/_total)");
    }
  }

  for (const auto& [name, st] : hists) {
    if (!st.has_sum || !st.has_count || !st.has_inf) {
      // _sum/_count-only families are ordinary series, not histograms,
      // unless buckets appeared.
      if (st.last_cumulative >= 0 || st.has_inf) {
        return Status::InvalidArgument("histogram " + name +
                                       " missing _sum/_count/+Inf bucket");
      }
      continue;
    }
    if (st.inf_bucket != st.count) {
      return Status::InvalidArgument(
          "histogram " + name + ": +Inf bucket " +
          std::to_string(st.inf_bucket) + " != _count " +
          std::to_string(st.count));
    }
    if (st.last_cumulative > st.inf_bucket) {
      return Status::InvalidArgument("histogram " + name +
                                     ": finite bucket exceeds +Inf");
    }
  }
  return Status::Ok();
}

}  // namespace bmr::obs
