#include "service/job_service.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/metric_names.h"

namespace bmr::service {

namespace {

/// Compose a per-pool series name: `bmr_..._total{pool="<name>"}`.
/// The exporter passes bmr_-prefixed counters through verbatim and
/// strips the label block for the family TYPE line (obs/export.cc).
std::string PoolSeries(const char* family, const std::string& pool) {
  return std::string(family) + "{pool=\"" + pool + "\"}";
}

/// Minimal JSON string escape for pool names in the /jobs snapshot.
std::string JsonQuoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  out += "\"";
  return out;
}

std::string JsonNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Parse `last=N` out of a /trace query string; 0 = everything.
size_t ParseLastParam(const std::string& query) {
  size_t pos = query.find("last=");
  if (pos == std::string::npos) return 0;
  return static_cast<size_t>(
      std::strtoull(query.c_str() + pos + 5, nullptr, 10));
}

}  // namespace

JobService::JobService(mr::ClusterContext* cluster, Options options)
    : cluster_(cluster), options_(options) {
  if (options_.max_running_jobs < 1) options_.max_running_jobs = 1;
  runners_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(options_.max_running_jobs));
}

JobService::~JobService() { Shutdown(); }

Status JobService::AddPool(const PoolConfig& config) {
  MutexLock lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("job service is shut down");
  }
  Status st = tree_.AddPool(config);
  if (st.ok()) stats_[config.name];  // series exist from declaration on
  return st;
}

StatusOr<JobTicket> JobService::Submit(const std::string& pool,
                                       const mr::JobSpec& spec) {
  MutexLock lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("job service is shut down");
  }
  if (!tree_.HasPool(pool)) {
    return Status::NotFound("pool not found: " + pool);
  }
  // Service-wide admission bound.  Preemption first: an under-share
  // pool's submission evicts the newest queued job of the most
  // over-share pool instead of bouncing.
  if (tree_.total_queued() >= options_.max_queued_jobs) {
    std::string victim_pool;
    uint64_t victim_job = 0;
    if (options_.preemption &&
        tree_.PickPreemptionVictim(pool, &victim_pool, &victim_job)) {
      ++stats_[victim_pool].preempted;
      FailQueuedLocked(
          victim_job,
          Status::ResourceExhausted(
              "preempted while queued: pool " + victim_pool +
              " is over its fair share and the service queue is full"),
          /*preempted=*/true);
    } else {
      ++stats_[pool].rejected;
      return Status::ResourceExhausted("service queue full");
    }
  }
  uint64_t id = next_id_++;
  Status st = tree_.Enqueue(pool, id);
  if (!st.ok()) {
    ++stats_[pool].rejected;
    return st;
  }
  auto entry = std::make_shared<JobEntry>();
  entry->pool = pool;
  entry->spec = spec;
  entry->submit_s = clock_.ElapsedSeconds();
  jobs_.emplace(id, std::move(entry));
  ++stats_[pool].submitted;
  DispatchLocked();
  return JobTicket{id};
}

void JobService::DispatchLocked() {
  std::string pool;
  uint64_t id = 0;
  while (tree_.total_running() < options_.max_running_jobs &&
         tree_.StartNext(&pool, &id)) {
    auto it = jobs_.find(id);
    JobEntry& entry = *it->second;
    entry.state = JobState::kRunning;
    entry.start_s = clock_.ElapsedSeconds();
    stats_[pool].queue_wait_us.Add(
        static_cast<uint64_t>((entry.start_s - entry.submit_s) * 1e6));
    runners_->Submit([this, id] { RunJob(id); });
  }
}

void JobService::RunJob(uint64_t id) {
  mr::JobSpec spec;
  {
    MutexLock lock(mu_);
    spec = jobs_.at(id)->spec;
  }
  // The engine run happens outside the lock: other submissions, waits,
  // and metric scrapes proceed while the job executes.
  mr::JobResult result = mr::JobRunner(cluster_).Run(spec);

  MutexLock lock(mu_);
  auto it = jobs_.find(id);
  JobEntry& entry = *it->second;
  entry.result = std::move(result);
  entry.state = JobState::kDone;
  entry.end_s = clock_.ElapsedSeconds();
  PoolStats& stats = stats_[entry.pool];
  stats.latency_us.Add(
      static_cast<uint64_t>((entry.end_s - entry.submit_s) * 1e6));
  if (entry.result.ok()) {
    ++stats.completed;
  } else {
    ++stats.failed;
  }
  completion_order_.push_back(entry.pool);
  tree_.FinishJob(entry.pool);
  DispatchLocked();
  lock.Unlock();
  done_cv_.NotifyAll();
}

void JobService::FailQueuedLocked(uint64_t id, const Status& status,
                                  bool preempted) {
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  JobEntry& entry = *it->second;
  entry.result.status = status;
  entry.state = JobState::kDone;
  entry.end_s = clock_.ElapsedSeconds();
  PoolStats& stats = stats_[entry.pool];
  stats.latency_us.Add(
      static_cast<uint64_t>((entry.end_s - entry.submit_s) * 1e6));
  if (!preempted) ++stats.failed;
  completion_order_.push_back(entry.pool);
  // Waiters may already be parked in Wait; the caller is inside the
  // public entry point that will NotifyAll after unlocking, but a
  // direct notify here keeps the contract local and costs nothing.
  done_cv_.NotifyAll();
}

JobOutcome JobService::Wait(const JobTicket& ticket) {
  MutexLock lock(mu_);
  auto it = jobs_.find(ticket.id);
  if (it == jobs_.end()) {
    JobOutcome outcome;
    outcome.status = Status::NotFound("unknown job ticket");
    return outcome;
  }
  std::shared_ptr<JobEntry> entry = it->second;
  while (entry->state != JobState::kDone) done_cv_.Wait(mu_);
  JobOutcome outcome;
  outcome.status = entry->result.status;
  outcome.result = entry->result;
  outcome.latency_seconds = entry->end_s - entry->submit_s;
  outcome.queue_wait_seconds =
      entry->start_s > 0 ? entry->start_s - entry->submit_s : 0;
  return outcome;
}

void JobService::Shutdown() {
  MutexLock lock(mu_);
  if (!shutdown_) {
    shutdown_ = true;
    // Cancel queued work: every queued job becomes terminal now, so
    // its waiters unblock instead of waiting on a dispatch that will
    // never come.
    for (auto& [id, entry] : jobs_) {
      if (entry->state != JobState::kQueued) continue;
      if (tree_.RemoveQueued(entry->pool, id)) {
        FailQueuedLocked(id, Status::Cancelled("job service shut down"),
                         /*preempted=*/false);
      }
    }
  }
  while (tree_.total_running() > 0) done_cv_.Wait(mu_);
  lock.Unlock();
  done_cv_.NotifyAll();
  // Runner threads may still be between their last job's NotifyAll and
  // thread exit; the pool's Wait is the real join point.
  runners_->Wait();
}

obs::MetricsSnapshot JobService::Metrics() const {
  MutexLock lock(mu_);
  obs::MetricsSnapshot snap;
  for (const auto& [pool, stats] : stats_) {
    snap.counters[PoolSeries(obs::kPromServiceJobsSubmitted, pool)] =
        stats.submitted;
    snap.counters[PoolSeries(obs::kPromServiceJobsCompleted, pool)] =
        stats.completed;
    snap.counters[PoolSeries(obs::kPromServiceJobsFailed, pool)] =
        stats.failed;
    snap.counters[PoolSeries(obs::kPromServiceJobsRejected, pool)] =
        stats.rejected;
    snap.counters[PoolSeries(obs::kPromServiceJobsPreempted, pool)] =
        stats.preempted;
    if (stats.latency_us.count() > 0) {
      snap.histograms[PoolSeries(obs::kHServiceJobLatencyUs, pool)] =
          stats.latency_us;
    }
    if (stats.queue_wait_us.count() > 0) {
      snap.histograms[PoolSeries(obs::kHServiceQueueWaitUs, pool)] =
          stats.queue_wait_us;
    }
  }
  snap.gauges[obs::kPromServiceJobsRunning] = tree_.total_running();
  snap.gauges[obs::kPromServiceJobsQueued] =
      static_cast<double>(tree_.total_queued());
  return snap;
}

std::string JobService::PrometheusMetrics() const {
  return obs::PrometheusText(Metrics());
}

std::vector<std::string> JobService::CompletionOrder() const {
  MutexLock lock(mu_);
  return completion_order_;
}

std::string JobService::JobsJson() const {
  std::vector<PoolTree::PoolSnapshot> pools;
  std::map<std::string, PoolStats> stats;
  size_t total_queued = 0;
  int total_running = 0;
  {
    MutexLock lock(mu_);
    pools = tree_.SnapshotPools();
    stats = stats_;
    total_queued = tree_.total_queued();
    total_running = tree_.total_running();
  }
  std::string out = "{\"total_queued\":" + std::to_string(total_queued) +
                    ",\"total_running\":" + std::to_string(total_running) +
                    ",\"pools\":[";
  bool first = true;
  for (const PoolTree::PoolSnapshot& p : pools) {
    if (!first) out += ",";
    first = false;
    const PoolStats& s = stats[p.config.name];
    out += "{\"name\":" + JsonQuoted(p.config.name) +
           ",\"parent\":" + JsonQuoted(p.config.parent) +
           ",\"weight\":" + JsonNum(p.config.weight) +
           ",\"min_share_slots\":" + std::to_string(p.config.min_share_slots) +
           ",\"max_share_slots\":" + std::to_string(p.config.max_share_slots) +
           ",\"queue_limit\":" + std::to_string(p.config.queue_limit) +
           ",\"queued\":" + std::to_string(p.queued) +
           ",\"running\":" + std::to_string(p.running) +
           ",\"started\":" + std::to_string(p.started) +
           ",\"submitted\":" + std::to_string(s.submitted) +
           ",\"completed\":" + std::to_string(s.completed) +
           ",\"failed\":" + std::to_string(s.failed) +
           ",\"rejected\":" + std::to_string(s.rejected) +
           ",\"preempted\":" + std::to_string(s.preempted) + "}";
  }
  out += "]}";
  return out;
}

Status JobService::ServeIntrospection(int port) {
  StatusOr<std::unique_ptr<obs::HttpIntrospectServer>> server =
      obs::HttpIntrospectServer::Create(port);
  if (!server.ok()) return server.status();
  introspect_ = std::move(*server);
  introspect_->Handle(
      "/metrics", "text/plain; version=0.0.4",
      [this](const std::string&) { return PrometheusMetrics(); });
  introspect_->Handle("/jobs", "application/json",
                      [this](const std::string&) { return JobsJson(); });
  introspect_->Handle("/trace", "application/json",
                      [](const std::string& query) {
                        return obs::FlightRecorder::Global()->SnapshotJson(
                            ParseLastParam(query));
                      });
  return Status::Ok();
}

int JobService::introspect_port() const {
  return introspect_ != nullptr ? introspect_->port() : 0;
}

}  // namespace bmr::service
