// Hierarchical fair-share pool tree for the multi-tenant job service
// (the ytsaurus scheduler_pool_server shape, scaled to this engine):
// tenants submit into leaf pools; every pool carries a weight, a
// min/max share in job slots, and a bounded queue of admitted jobs.
//
// Scheduling policy (docs/GUIDE.md §14), applied at every level of the
// tree when a slot frees:
//   1. children below their min_share (and with demand) go first,
//      largest deficit wins — min_share is a guarantee;
//   2. otherwise the child with the lowest running/weight ratio wins —
//      weighted fair share of the slots actually in use — with ties
//      broken by the lowest cumulative started/weight (historical
//      usage), so equal-weight pools round-robin even on one slot;
//   3. zero-weight children are leftover-only: they are picked only
//      when no positive-weight sibling has demand, so a flood from a
//      weight-0 tenant can never starve paying pools;
//   4. a child at its max_share cap is never picked, whatever its
//      ratio.
//
// Admission is fast-fail: a full pool queue bounces the submission
// instead of blocking the submitter.  When the service-wide queue
// bound is hit, PickPreemptionVictim selects the newest queued job of
// the most over-share pool (queued/weight), so a starved pool's
// submission evicts over-share queued work instead of being rejected.
//
// The tree itself is NOT internally synchronized: JobService guards
// every call with its own mutex (one lock, no ordering edges).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace bmr::service {

struct PoolConfig {
  std::string name;
  /// Parent pool; the tree root "root" always exists.
  std::string parent = "root";
  /// Fair-share weight at this level.  0 = leftover-only (runs only
  /// when no positive-weight sibling has demand).
  double weight = 1.0;
  /// Guaranteed concurrent job slots (deficit-first priority below it).
  int min_share_slots = 0;
  /// Concurrent job slot cap for the subtree; -1 = unlimited.
  int max_share_slots = -1;
  /// Bound on jobs admitted (queued, not yet running) in this leaf.
  size_t queue_limit = 64;
};

class PoolTree {
 public:
  PoolTree();

  PoolTree(const PoolTree&) = delete;
  PoolTree& operator=(const PoolTree&) = delete;

  /// Add a pool under an existing parent.  Fails on duplicate names,
  /// unknown parents, negative weights, and parents that already hold
  /// queued jobs (a queueing pool must stay a leaf).
  [[nodiscard]] Status AddPool(const PoolConfig& config);

  /// Admission: append `job` to `pool`'s queue.  Fast-fails with
  /// ResourceExhausted when the pool queue is at its bound, NotFound
  /// for unknown pools, FailedPrecondition for non-leaf pools.
  [[nodiscard]] Status Enqueue(const std::string& pool, uint64_t job);

  /// Pick the next job to start under the policy above, account it as
  /// running in its whole chain, and pop it from its queue.  Returns
  /// false when nothing is eligible (no demand, or every pool with
  /// demand is capped by max_share).
  bool StartNext(std::string* pool, uint64_t* job);

  /// A running job of `pool` finished (or failed): release its slot
  /// up the chain.
  void FinishJob(const std::string& pool);

  /// Remove a specific queued job (service shutdown cancels queued
  /// work).  Returns false when the job is not queued in `pool`.
  bool RemoveQueued(const std::string& pool, uint64_t job);

  /// Preemption: choose the newest queued job of the pool most over
  /// its queue share (queued/weight), strictly more over-share than
  /// `for_pool` would be after enqueueing one more job.  On success
  /// the victim is removed from its queue and reported; the caller
  /// owns failing it back to its submitter.
  bool PickPreemptionVictim(const std::string& for_pool,
                            std::string* victim_pool, uint64_t* victim_job);

  /// Point-in-time view of one leaf pool (the /jobs endpoint and
  /// service metrics; GUIDE §15).
  struct PoolSnapshot {
    PoolConfig config;
    size_t queued = 0;
    int running = 0;
    uint64_t started = 0;
  };

  // Introspection (service metrics, tests).
  [[nodiscard]] bool HasPool(const std::string& pool) const;
  size_t queued(const std::string& pool) const;
  int running(const std::string& pool) const;
  size_t total_queued() const;
  int total_running() const;
  /// Leaf pools, in creation order.
  std::vector<std::string> LeafPools() const;
  /// Snapshots of every leaf pool, in creation order.
  std::vector<PoolSnapshot> SnapshotPools() const;

 private:
  struct Pool {
    PoolConfig config;
    Pool* parent = nullptr;
    std::vector<Pool*> children;  // creation order = tie-break order
    std::deque<uint64_t> queue;   // leaves only; front = oldest
    size_t subtree_queued = 0;
    int running = 0;           // running jobs in the subtree
    uint64_t started = 0;      // jobs ever started in the subtree
  };

  Pool* Find(const std::string& name) const;
  /// Queue-share ratio used by preemption: queued/weight, +inf for
  /// zero-weight pools with queued work.
  static double QueueShare(size_t queued, double weight);

  std::map<std::string, std::unique_ptr<Pool>> pools_;
  std::vector<std::string> creation_order_;
  Pool* root_;
};

}  // namespace bmr::service
