#include "service/pool_tree.h"

#include <limits>

namespace bmr::service {

PoolTree::PoolTree() {
  auto root = std::make_unique<Pool>();
  root->config.name = "root";
  root->config.parent.clear();
  root_ = root.get();
  pools_.emplace("root", std::move(root));
}

PoolTree::Pool* PoolTree::Find(const std::string& name) const {
  auto it = pools_.find(name);
  return it == pools_.end() ? nullptr : it->second.get();
}

Status PoolTree::AddPool(const PoolConfig& config) {
  if (config.name.empty()) {
    return Status::InvalidArgument("pool name must not be empty");
  }
  if (pools_.count(config.name) != 0) {
    return Status::AlreadyExists("pool already exists: " + config.name);
  }
  if (config.weight < 0) {
    return Status::InvalidArgument("pool weight must be >= 0: " + config.name);
  }
  Pool* parent = Find(config.parent);
  if (parent == nullptr) {
    return Status::NotFound("parent pool not found: " + config.parent);
  }
  if (!parent->queue.empty()) {
    return Status::FailedPrecondition(
        "parent pool holds queued jobs and must stay a leaf: " +
        config.parent);
  }
  auto pool = std::make_unique<Pool>();
  pool->config = config;
  pool->parent = parent;
  parent->children.push_back(pool.get());
  creation_order_.push_back(config.name);
  pools_.emplace(config.name, std::move(pool));
  return Status::Ok();
}

Status PoolTree::Enqueue(const std::string& name, uint64_t job) {
  Pool* pool = Find(name);
  if (pool == nullptr) return Status::NotFound("pool not found: " + name);
  if (!pool->children.empty()) {
    return Status::FailedPrecondition(
        "pool has child pools; submit to a leaf: " + name);
  }
  if (pool->queue.size() >= pool->config.queue_limit) {
    return Status::ResourceExhausted("pool queue full: " + name);
  }
  pool->queue.push_back(job);
  for (Pool* p = pool; p != nullptr; p = p->parent) ++p->subtree_queued;
  return Status::Ok();
}

bool PoolTree::StartNext(std::string* pool, uint64_t* job) {
  Pool* node = root_;
  while (!node->children.empty()) {
    // Deficit-first: the child furthest below its min_share guarantee.
    Pool* best = nullptr;
    int best_deficit = 0;
    for (Pool* c : node->children) {
      if (c->subtree_queued == 0) continue;
      if (c->config.max_share_slots >= 0 &&
          c->running >= c->config.max_share_slots) {
        continue;
      }
      int deficit = c->config.min_share_slots - c->running;
      if (deficit > 0 && (best == nullptr || deficit > best_deficit)) {
        best = c;
        best_deficit = deficit;
      }
    }
    if (best == nullptr) {
      // Weighted fair share: lowest running/weight among positive-
      // weight children with demand; ties broken by lowest cumulative
      // started/weight, so equal-ratio pools round-robin instead of
      // creation order winning every time (matters most on one slot,
      // where running/weight is 0 for every idle pool).  Zero-weight
      // children only run when no positive-weight child qualifies
      // (their ratios are +inf, so the strict < keeps any finite
      // ratio ahead of them).
      const double inf = std::numeric_limits<double>::infinity();
      double best_ratio = inf;
      double best_history = inf;
      for (Pool* c : node->children) {
        if (c->subtree_queued == 0) continue;
        if (c->config.max_share_slots >= 0 &&
            c->running >= c->config.max_share_slots) {
          continue;
        }
        double ratio = c->config.weight > 0
                           ? static_cast<double>(c->running) / c->config.weight
                           : inf;
        double history =
            c->config.weight > 0
                ? static_cast<double>(c->started) / c->config.weight
                : inf;
        if (best == nullptr || ratio < best_ratio ||
            (ratio == best_ratio && history < best_history)) {
          best = c;
          best_ratio = ratio;
          best_history = history;
        }
      }
    }
    if (best == nullptr) return false;
    node = best;
  }
  if (node->queue.empty()) return false;  // bare root, no demand
  *pool = node->config.name;
  *job = node->queue.front();
  node->queue.pop_front();
  for (Pool* p = node; p != nullptr; p = p->parent) {
    --p->subtree_queued;
    ++p->running;
    ++p->started;
  }
  return true;
}

void PoolTree::FinishJob(const std::string& name) {
  Pool* pool = Find(name);
  if (pool == nullptr) return;
  for (Pool* p = pool; p != nullptr; p = p->parent) {
    if (p->running > 0) --p->running;
  }
}

bool PoolTree::RemoveQueued(const std::string& name, uint64_t job) {
  Pool* pool = Find(name);
  if (pool == nullptr) return false;
  for (auto it = pool->queue.begin(); it != pool->queue.end(); ++it) {
    if (*it != job) continue;
    pool->queue.erase(it);
    for (Pool* p = pool; p != nullptr; p = p->parent) --p->subtree_queued;
    return true;
  }
  return false;
}

double PoolTree::QueueShare(size_t queued, double weight) {
  if (queued == 0) return 0;
  if (weight <= 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(queued) / weight;
}

bool PoolTree::PickPreemptionVictim(const std::string& for_pool,
                                    std::string* victim_pool,
                                    uint64_t* victim_job) {
  Pool* claimant = Find(for_pool);
  if (claimant == nullptr) return false;
  double claimant_share =
      QueueShare(claimant->queue.size() + 1, claimant->config.weight);

  Pool* victim = nullptr;
  double victim_share = claimant_share;
  for (const std::string& name : creation_order_) {
    Pool* p = Find(name);
    if (p == nullptr || p == claimant || p->queue.empty()) continue;
    double share = QueueShare(p->queue.size(), p->config.weight);
    // Strictly more over-share than the claimant would be: equal-share
    // pools never preempt each other (no churn between peers).
    if (share > victim_share) {
      victim = p;
      victim_share = share;
    }
  }
  if (victim == nullptr) return false;
  *victim_pool = victim->config.name;
  *victim_job = victim->queue.back();  // newest admitted loses
  victim->queue.pop_back();
  for (Pool* p = victim; p != nullptr; p = p->parent) --p->subtree_queued;
  return true;
}

bool PoolTree::HasPool(const std::string& pool) const {
  return Find(pool) != nullptr;
}

size_t PoolTree::queued(const std::string& pool) const {
  const Pool* p = Find(pool);
  return p == nullptr ? 0 : p->subtree_queued;
}

int PoolTree::running(const std::string& pool) const {
  const Pool* p = Find(pool);
  return p == nullptr ? 0 : p->running;
}

size_t PoolTree::total_queued() const { return root_->subtree_queued; }

int PoolTree::total_running() const { return root_->running; }

std::vector<std::string> PoolTree::LeafPools() const {
  std::vector<std::string> leaves;
  for (const std::string& name : creation_order_) {
    const Pool* p = Find(name);
    if (p != nullptr && p->children.empty()) leaves.push_back(name);
  }
  return leaves;
}

std::vector<PoolTree::PoolSnapshot> PoolTree::SnapshotPools() const {
  std::vector<PoolSnapshot> snapshots;
  for (const std::string& name : creation_order_) {
    const Pool* p = Find(name);
    if (p == nullptr || !p->children.empty()) continue;
    PoolSnapshot snap;
    snap.config = p->config;
    snap.queued = p->queue.size();
    snap.running = p->running;
    snap.started = p->started;
    snapshots.push_back(std::move(snap));
  }
  return snapshots;
}

}  // namespace bmr::service
