// Long-running multi-tenant job service (ROADMAP item 2): accepts
// queued JobSpec submissions from many tenants and schedules them over
// one shared ClusterContext (PR 1's job-scoped shuffle makes the
// concurrent runs safe).  Admission, ordering, and preemption are the
// PoolTree's policy (pool_tree.h); this class adds the runtime:
//
//   Submit  — non-blocking admission.  Fast-fails with
//             ResourceExhausted when the pool queue (or, when
//             preemption finds no over-share victim, the service-wide
//             queue) is full; never blocks the submitter.
//   Wait    — blocks until the ticket's job completed, failed, was
//             preempted, or was cancelled by Shutdown.
//   Metrics — per-pool bmr_service_* counter/histogram families plus
//             occupancy gauges as an obs::MetricsSnapshot, exportable
//             through the PR 5 Prometheus text exposition.
//
// Concurrency shape: one mutex guards the tree and the job table;
// it is never held across a JobRunner::Run (jobs execute on a runner
// ThreadPool sized to max_running_jobs, the cluster's job slots).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "concurrency/thread_pool.h"
#include "mr/engine.h"
#include "obs/export.h"
#include "obs/http_introspect.h"
#include "service/pool_tree.h"

namespace bmr::service {

struct JobServiceOptions {
  /// Concurrent jobs executing against the cluster (runner threads).
  int max_running_jobs = 2;
  /// Service-wide bound on admitted-but-not-running jobs; hitting it
  /// triggers preemption (or rejection when no victim qualifies).
  size_t max_queued_jobs = 64;
  /// Evict over-share queued work for under-share submitters at the
  /// global bound; off = plain rejection.
  bool preemption = true;
};

/// Handle for one admitted submission.
struct JobTicket {
  uint64_t id = 0;
};

/// Terminal state of one admitted submission.
struct JobOutcome {
  /// Ok = ran and succeeded.  ResourceExhausted = preempted while
  /// queued.  Cancelled = service shut down first.  Anything else =
  /// the engine's failure status.
  Status status;
  /// Engine result; meaningful only for jobs that actually ran.
  mr::JobResult result;
  double queue_wait_seconds = 0;  // submit -> start (0 if never ran)
  double latency_seconds = 0;     // submit -> terminal state
};

class JobService {
 public:
  using Options = JobServiceOptions;

  JobService(mr::ClusterContext* cluster, Options options = {});
  ~JobService();  // Shutdown()

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Declare a pool (see PoolConfig).  Pools are fixed topology: add
  /// them before the submissions that use them.
  [[nodiscard]] Status AddPool(const PoolConfig& config) BMR_EXCLUDES(mu_);

  /// Admit one job into `pool`.  Non-blocking; see class comment for
  /// the fast-fail cases.  An admitted job WILL reach a terminal state
  /// observable through Wait.
  [[nodiscard]] StatusOr<JobTicket> Submit(const std::string& pool,
                                           const mr::JobSpec& spec)
      BMR_EXCLUDES(mu_);

  /// Block until the ticket's job reaches a terminal state.
  JobOutcome Wait(const JobTicket& ticket) BMR_EXCLUDES(mu_);

  /// Stop admitting, cancel everything still queued (their waiters get
  /// Cancelled), and wait for running jobs to finish.  Idempotent.
  void Shutdown() BMR_EXCLUDES(mu_);

  /// Per-pool bmr_service_* families + occupancy gauges.
  obs::MetricsSnapshot Metrics() const BMR_EXCLUDES(mu_);
  /// Metrics() through the Prometheus text exposition.
  std::string PrometheusMetrics() const BMR_EXCLUDES(mu_);

  /// JSON snapshot of the pool tree for the /jobs endpoint (GUIDE
  /// §15): per-pool config (weight, shares, queue bound), occupancy
  /// (queued/running/started), and lifetime outcome counters.
  std::string JobsJson() const BMR_EXCLUDES(mu_);

  /// Start the live introspection endpoints on 127.0.0.1:`port` (0 =
  /// ephemeral): /metrics (Prometheus exposition), /jobs (pool-tree
  /// JSON), /trace?last=N (flight-recorder snapshot).
  [[nodiscard]] Status ServeIntrospection(int port) BMR_EXCLUDES(mu_);
  /// The bound introspection port; 0 before ServeIntrospection.
  int introspect_port() const;

  /// Pool name of every terminal job, in completion order (fairness
  /// assertions: the prefix of length N is the first N completions).
  std::vector<std::string> CompletionOrder() const BMR_EXCLUDES(mu_);

 private:
  enum class JobState { kQueued, kRunning, kDone };

  struct JobEntry {
    std::string pool;
    mr::JobSpec spec;
    JobState state = JobState::kQueued;
    mr::JobResult result;
    double submit_s = 0;
    double start_s = 0;
    double end_s = 0;
  };

  /// Per-pool counters + latency families behind the bmr_service_*
  /// series (metric_names.h).
  struct PoolStats {
    uint64_t submitted = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t rejected = 0;
    uint64_t preempted = 0;
    LogHistogram latency_us;
    LogHistogram queue_wait_us;
  };

  /// Move every startable queued job onto the runner pool.
  void DispatchLocked() BMR_REQUIRES(mu_);
  /// Terminal state for a job that never ran (preempted / cancelled).
  void FailQueuedLocked(uint64_t id, const Status& status, bool preempted)
      BMR_REQUIRES(mu_);
  void RunJob(uint64_t id) BMR_EXCLUDES(mu_);

  mr::ClusterContext* cluster_;
  Options options_;
  Stopwatch clock_;

  mutable OrderedMutex mu_{"service.job_service"};
  CondVar done_cv_;
  PoolTree tree_ BMR_GUARDED_BY(mu_);
  std::map<uint64_t, std::shared_ptr<JobEntry>> jobs_ BMR_GUARDED_BY(mu_);
  std::map<std::string, PoolStats> stats_ BMR_GUARDED_BY(mu_);
  std::vector<std::string> completion_order_ BMR_GUARDED_BY(mu_);
  uint64_t next_id_ BMR_GUARDED_BY(mu_) = 1;
  bool shutdown_ BMR_GUARDED_BY(mu_) = false;

  // Last members, destroyed first: runner threads and the introspection
  // listener (whose handlers lock mu_) must stop before the state above
  // dies.
  std::unique_ptr<ThreadPool> runners_;
  std::unique_ptr<obs::HttpIntrospectServer> introspect_;
};

}  // namespace bmr::service
