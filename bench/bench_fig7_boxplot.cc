// Figure 7: box plot of the relative % improvements across the six
// case studies.  Each application's distribution comes from its Fig. 6
// sweep (sizes / mapper counts) plus seed variation.
#include <cstdio>

#include "common/histogram.h"
#include "common/table.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"

using bmr::Distribution;
using bmr::TextTable;
using bmr::cluster::PaperCluster;
using bmr::simmr::SimJob;
using bmr::simmr::SimulateJob;

namespace {

double Improvement(SimJob job) {
  job.barrierless = false;
  double with = SimulateJob(PaperCluster(), job).completion_seconds;
  job.barrierless = true;
  double without = SimulateJob(PaperCluster(), job).completion_seconds;
  return (with - without) / with * 100.0;
}

Distribution SweepGb(SimJob (*make)(double, int)) {
  Distribution d;
  for (double gb : {2.0, 4.0, 8.0, 12.0, 16.0}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      SimJob job = make(gb, 60);
      job.seed = seed;
      d.Add(Improvement(job));
    }
  }
  return d;
}

}  // namespace

int main() {
  std::printf(
      "== Figure 7: box plot of %% improvement per application ==\n"
      "(whiskers = min/max, box = p25/p75, line = median)\n\n");

  struct Row {
    const char* name;
    Distribution dist;
  };
  std::vector<Row> rows;
  rows.push_back({"Sort", SweepGb(bmr::simmr::SortSim)});
  rows.push_back({"WC", SweepGb(bmr::simmr::WordCountSim)});
  rows.push_back({"KNN", SweepGb(bmr::simmr::KnnSim)});
  rows.push_back({"PP", SweepGb(bmr::simmr::LastFmSim)});
  {
    Distribution d;
    for (int m : {25, 50, 100, 175, 250}) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        SimJob job = bmr::simmr::GeneticSim(m);
        job.seed = seed;
        d.Add(Improvement(job));
      }
    }
    rows.push_back({"GA", d});
  }
  {
    Distribution d;
    for (int m : {10, 25, 50, 100, 200, 300}) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        SimJob job = bmr::simmr::BlackScholesSim(m);
        job.seed = seed;
        d.Add(Improvement(job));
      }
    }
    rows.push_back({"BS", d});
  }

  TextTable table({"app", "min_%", "p25_%", "median_%", "p75_%", "max_%"});
  double grand_total = 0;
  size_t grand_n = 0;
  for (auto& row : rows) {
    table.AddRow({row.name, TextTable::Num(row.dist.Min(), 1),
                  TextTable::Num(row.dist.Quantile(0.25), 1),
                  TextTable::Num(row.dist.Median(), 1),
                  TextTable::Num(row.dist.Quantile(0.75), 1),
                  TextTable::Num(row.dist.Max(), 1)});
    grand_total += row.dist.Sum();
    grand_n += row.dist.count();
  }
  table.Print();
  std::printf(
      "\naverage improvement across all runs: %.1f%% "
      "(paper: 25%% average, 87%% best case)\n"
      "best case observed: BS max above; worst case: Sort min above\n",
      grand_total / grand_n);
  return 0;
}
