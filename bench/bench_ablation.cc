// Ablations beyond the paper's headline results:
//  1. heterogeneity (the paper's §8 future-work axis): node-speed
//     spread vs barrier-less improvement,
//  2. network oversubscription: mapper slack sensitivity,
//  3. map-side sort bypass: our framework's extra knob — barrier-less
//     reducers don't need sorted runs, so the map-side sort can go too,
//  4. spill threshold sensitivity for the spill-and-merge store.
#include <cstdio>

#include "common/table.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"

using bmr::SeriesPrinter;
using bmr::cluster::ApplyHeterogeneity;
using bmr::cluster::ClusterSpec;
using bmr::cluster::PaperCluster;
using bmr::simmr::SimJob;
using bmr::simmr::SimulateJob;

namespace {

double Improvement(const ClusterSpec& cluster, SimJob job) {
  job.barrierless = false;
  double with = SimulateJob(cluster, job).completion_seconds;
  job.barrierless = true;
  double without = SimulateJob(cluster, job).completion_seconds;
  return (with - without) / with * 100.0;
}

}  // namespace

int main() {
  std::printf("== Ablation studies ==\n\n");

  {
    SeriesPrinter series(
        "A1. Heterogeneity (paper §8): WordCount 8 GB improvement vs "
        "node-speed spread",
        "speed_spread", {"improvement_%", "with_barrier_s"});
    for (double spread : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
      ClusterSpec cluster = PaperCluster();
      ApplyHeterogeneity(&cluster, spread, /*seed=*/7);
      SimJob job = bmr::simmr::WordCountSim(8.0);
      job.barrierless = false;
      double with = SimulateJob(cluster, job).completion_seconds;
      series.AddPoint(spread, {Improvement(cluster, job), with});
    }
    series.Print();
    std::printf("Slower stragglers stretch the map tail; the barrier-less\n"
                "version hides more reduce work under it, so the benefit\n"
                "grows with heterogeneity — confirming the paper's\n"
                "conjecture.\n\n");
  }

  {
    SeriesPrinter series(
        "A2. Oversubscription: Sort 8 GB (shuffle-bound) improvement vs "
        "backbone oversubscription factor",
        "oversubscription", {"improvement_%", "mapper_slack_s"});
    for (double factor : {1.0, 4.0, 8.0, 16.0, 32.0}) {
      ClusterSpec cluster = PaperCluster();
      cluster.oversubscription = factor;
      SimJob job = bmr::simmr::SortSim(8.0);
      job.barrierless = false;
      double slack = SimulateJob(cluster, job).mapper_slack;
      series.AddPoint(factor, {Improvement(cluster, job), slack});
    }
    series.Print();
    std::printf("Congested fabrics lengthen the shuffle interval; with\n"
                "enough congestion even Sort's red-black fold hides under\n"
                "the transfer and the barrier-less penalty flips to a win.\n\n");
  }

  {
    SeriesPrinter series(
        "A3. Bypassing the map-side sort too (barrier-less only, "
        "WordCount)",
        "input_GB", {"bl_with_mapsort_s", "bl_without_mapsort_s", "extra_%"});
    for (double gb : {2.0, 8.0, 16.0}) {
      SimJob job = bmr::simmr::WordCountSim(gb);
      job.barrierless = true;
      double with_sort = SimulateJob(PaperCluster(), job).completion_seconds;
      job.map_sort_cost_per_record = 0;  // FIFO consumers don't need order
      double without_sort =
          SimulateJob(PaperCluster(), job).completion_seconds;
      series.AddPoint(
          gb, {with_sort, without_sort,
               (with_sort - without_sort) / with_sort * 100.0});
    }
    series.Print();
    std::printf("The paper leaves the map path untouched; dropping the\n"
                "now-unnecessary map-side sort is additional headroom.\n\n");
  }

  {
    SeriesPrinter series(
        "A4. Spill threshold sensitivity (WordCount 16 GB, 10 reducers, "
        "spill-merge)",
        "threshold_MB", {"completion_s"});
    for (uint64_t mb : {60, 120, 240, 480, 960}) {
      SimJob job = bmr::simmr::WordCountSim(16.0, 10);
      job.barrierless = true;
      job.store.type = bmr::core::StoreType::kSpillMerge;
      job.store.spill_threshold_bytes = mb << 20;
      series.AddPoint(static_cast<double>(mb),
                      {SimulateJob(PaperCluster(), job).completion_seconds});
    }
    series.Print();
    std::printf("Smaller thresholds spill more often (more I/O pauses);\n"
                "larger ones approach the in-memory store.\n\n");
  }

  {
    SeriesPrinter series(
        "A5. Combiner: WordCount 8 GB, shuffle reduction vs completion",
        "combiner_reduction", {"with_barrier_s", "without_barrier_s"});
    for (double reduction : {0.0, 0.5, 0.8, 0.9}) {
      SimJob job = bmr::simmr::WordCountSim(8.0);
      job.combiner_reduction = reduction;
      job.barrierless = false;
      double with = SimulateJob(PaperCluster(), job).completion_seconds;
      job.barrierless = true;
      double without = SimulateJob(PaperCluster(), job).completion_seconds;
      series.AddPoint(reduction, {with, without});
    }
    series.Print();
    std::printf("Combining shrinks both the shuffle and the reduce-side\n"
                "work; the barrier-less advantage narrows but persists.\n\n");
  }

  {
    SeriesPrinter series(
        "A6. Speculative execution with one failing-slow node "
        "(speed 0.2, WordCount 8 GB)",
        "speculation(0/1)",
        {"with_barrier_s", "without_barrier_s", "backups", "backups_won"});
    for (bool speculate : {false, true}) {
      ClusterSpec cluster = PaperCluster();
      cluster.nodes[5].speed = 0.2;  // one faulty machine
      SimJob job = bmr::simmr::WordCountSim(8.0);
      job.speculative_execution = speculate;
      job.barrierless = false;
      auto with = SimulateJob(cluster, job);
      job.barrierless = true;
      auto without = SimulateJob(cluster, job);
      series.AddPoint(speculate ? 1 : 0,
                      {with.completion_seconds, without.completion_seconds,
                       static_cast<double>(with.backups_launched),
                       static_cast<double>(with.backups_won)});
    }
    series.Print();
    std::printf("Backup tasks clip the faulty machine's straggler tail in\n"
                "both modes — speculation and barrier-removal compose.\n");
  }
  return 0;
}
