// google-benchmark micro-suite for the data-path primitives: partial
// stores (the three Section-5 schemes), the k-way merge vs the
// red-black fold (the Fig. 6(a) mechanism), the shuffle FIFO, and the
// serde layer.
#include <benchmark/benchmark.h>

#include "common/hash.h"
#include "common/rng.h"
#include "common/serde.h"
#include "concurrency/bounded_queue.h"
#include "core/inmemory_store.h"
#include "core/kvstore.h"
#include "core/spill_merge_store.h"
#include "mr/shuffle.h"

namespace bmr {
namespace {

std::vector<std::string> MakeKeys(size_t n, uint32_t distinct, uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("key" + std::to_string(rng.NextBounded(distinct)));
  }
  return keys;
}

template <typename Store>
void RunStoreFold(Store& store, const std::vector<std::string>& keys) {
  std::string partial;
  for (const auto& key : keys) {
    int64_t n = 0;
    bool found = false;
    if (store.Get(Slice(key), &partial, &found).ok() && found) {
      DecodeI64(Slice(partial), &n);
    }
    benchmark::DoNotOptimize(
        store.Put(Slice(key), Slice(EncodeI64(n + 1))));
  }
}

void BM_InMemoryStoreFold(benchmark::State& state) {
  auto keys = MakeKeys(8192, static_cast<uint32_t>(state.range(0)), 42);
  for (auto _ : state) {
    core::StoreConfig config;
    core::InMemoryStore store(config);
    RunStoreFold(store, keys);
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_InMemoryStoreFold)->Arg(64)->Arg(1024)->Arg(8192);

void BM_SpillMergeStoreFold(benchmark::State& state) {
  auto keys = MakeKeys(8192, 1024, 42);
  for (auto _ : state) {
    core::StoreConfig config;
    config.type = core::StoreType::kSpillMerge;
    config.spill_threshold_bytes = static_cast<uint64_t>(state.range(0));
    core::SpillMergeStore store(config);
    RunStoreFold(store, keys);
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_SpillMergeStoreFold)->Arg(16 << 10)->Arg(256 << 10);

void BM_KvStoreFold(benchmark::State& state) {
  auto keys = MakeKeys(8192, 1024, 42);
  for (auto _ : state) {
    core::StoreConfig config;
    config.type = core::StoreType::kKvStore;
    config.kv_cache_bytes = static_cast<uint64_t>(state.range(0));
    core::KvStoreBackend store(config);
    RunStoreFold(store, keys);
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_KvStoreFold)->Arg(8 << 10)->Arg(1 << 20);

/// The barrier's mechanism: k-way merge of sorted runs.
void BM_MergeSortedRuns(benchmark::State& state) {
  const int runs = static_cast<int>(state.range(0));
  std::vector<std::vector<mr::Record>> source(runs);
  Pcg32 rng(7);
  for (int r = 0; r < runs; ++r) {
    for (int i = 0; i < 20000 / runs; ++i) {
      source[r].emplace_back("k" + std::to_string(rng.NextU32()), "");
    }
    std::sort(source[r].begin(), source[r].end(),
              [](const mr::Record& a, const mr::Record& b) {
                return a.key < b.key;
              });
  }
  for (auto _ : state) {
    auto copy = source;
    auto merged = mr::MergeSortedRuns(std::move(copy), nullptr);
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_MergeSortedRuns)->Arg(4)->Arg(16)->Arg(64);

/// The barrier-less mechanism on Sort's worst case: ordered-map insert
/// with unique keys (O(records) tree).
void BM_OrderedMapInsertUnique(benchmark::State& state) {
  Pcg32 rng(7);
  std::vector<std::string> keys;
  for (int i = 0; i < 20000; ++i) {
    keys.push_back("k" + std::to_string(rng.NextU32()));
  }
  for (auto _ : state) {
    core::StoreConfig config;
    core::InMemoryStore store(config);
    for (const auto& key : keys) {
      benchmark::DoNotOptimize(store.Put(Slice(key), ""));
    }
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_OrderedMapInsertUnique);

void BM_BoundedQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    BoundedQueue<int> queue(1024);
    for (int i = 0; i < 4096; ++i) {
      if (!queue.TryPush(i)) {
        while (queue.TryPop()) {
        }
        queue.TryPush(i);
      }
    }
    while (queue.TryPop()) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BoundedQueueThroughput);

void BM_VarintRoundTrip(benchmark::State& state) {
  Pcg32 rng(3);
  std::vector<uint64_t> values;
  for (int i = 0; i < 1024; ++i) values.push_back(rng.NextU64() >> (i % 50));
  for (auto _ : state) {
    ByteBuffer buf;
    Encoder enc(&buf);
    for (uint64_t v : values) enc.PutVarint64(v);
    Decoder dec(buf.AsSlice());
    uint64_t out = 0, sum = 0;
    while (dec.GetVarint64(&out)) sum += out;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_VarintRoundTrip);

void BM_Fnv1a64(benchmark::State& state) {
  std::string data(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fnv1a64(Slice(data)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fnv1a64)->Arg(8)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace bmr
