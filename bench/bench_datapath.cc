// Data-plane benchmark: measures the batched barrier-less shuffle path
// against the per-record design it replaced, plus fetch-to-reduce and
// partial-store throughput.  Emits machine-readable BENCH_datapath.json
// (schema: {bench, metric, value, unit, seed} per row) consumed by the
// scripts/bench.sh regression gate — every metric is higher-is-better.
//
//   bench_datapath [--smoke] [--out FILE]
//
// --smoke shrinks the workloads for CI; --out defaults to
// BENCH_datapath.json in the working directory.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/codec.h"
#include "common/config.h"
#include "common/rng.h"
#include "common/serde.h"
#include "concurrency/bounded_queue.h"
#include "core/barrierless_driver.h"
#include "core/incremental.h"
#include "core/inmemory_store.h"
#include "core/kvstore.h"
#include "core/spill_merge_store.h"
#include "mr/map_output.h"
#include "mr/record_batch.h"
#include "mr/segment_codec.h"
#include "mr/shuffle_service.h"
#include "obs/metric_names.h"
#include "obs/trace.h"

namespace bmr {
namespace {

constexpr uint64_t kSeed = 42;

struct MetricRow {
  std::string bench;
  std::string metric;
  double value;
  std::string unit;
};

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::vector<mr::Record> MakeRecords(size_t n, uint32_t distinct) {
  Pcg32 rng(kSeed);
  std::vector<mr::Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.emplace_back("key" + std::to_string(rng.NextBounded(distinct)),
                         "v" + std::to_string(i % 997));
  }
  return records;
}

/// Wordcount-shaped shuffle payload for the codec pair: zipf-skewed
/// word keys and "1" values, the stream the map side actually emits.
/// The uniform key<N> records above stay for the queue benches — they
/// are a deliberate worst case for batching, but as near-random bytes
/// they understate what block compression does to real shuffle traffic.
std::vector<mr::Record> MakeWordRecords(size_t n) {
  Pcg32 rng(kSeed);
  static const char* const kSyllables[] = {
      "an", "ber", "con", "dis", "en",  "for", "ing", "lo",
      "ma", "nor", "per", "qua", "re",  "sta", "ter", "un"};
  std::vector<std::string> vocab;
  vocab.reserve(5000);
  for (size_t i = 0; i < 5000; ++i) {
    std::string w;
    size_t parts = 2 + rng.NextBounded(3);
    for (size_t p = 0; p < parts; ++p) w += kSyllables[rng.NextBounded(16)];
    vocab.push_back(std::move(w));
  }
  std::vector<mr::Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Two chained bounded draws skew toward the head of the vocabulary
    // — the zipf-ish shape of natural-language word frequencies.
    records.emplace_back(vocab[rng.NextBounded(rng.NextBounded(5000) + 1)],
                         "1");
  }
  return records;
}

/// Encode `records` into shuffle-segment byte strings of roughly
/// `segment_bytes` each (the same framing DecodeSegment expects).
std::vector<std::string> EncodeSegments(const std::vector<mr::Record>& records,
                                        size_t segment_bytes) {
  std::vector<std::string> segments;
  ByteBuffer buf(segment_bytes + 256);
  Encoder enc(&buf);
  for (const mr::Record& r : records) {
    enc.PutString(r.key);
    enc.PutString(r.value);
    if (buf.size() >= segment_bytes) {
      segments.push_back(buf.ToString());
      buf.Clear();
    }
  }
  if (!buf.empty()) segments.push_back(buf.ToString());
  return segments;
}

/// The pre-batching design: one Push and one Pop (one lock cycle, one
/// wakeup) per record through the shuffle FIFO.
MetricRow BenchFifoPerRecord(const std::vector<mr::Record>& records) {
  BoundedQueue<mr::Record> fifo(64 << 10);
  uint64_t consumed_bytes = 0;
  auto t0 = std::chrono::steady_clock::now();
  std::thread producer([&records, &fifo] {
    for (const mr::Record& r : records) {
      if (!fifo.Push(r)) return;
    }
    fifo.Close();
  });
  while (auto record = fifo.Pop()) {
    consumed_bytes += record->key.size() + record->value.size();
  }
  producer.join();
  double secs = SecondsSince(t0);
  if (consumed_bytes == 0) secs = 1;  // defensive: never divide by zero work
  return {"queue", "per_record_records_per_sec",
          static_cast<double>(records.size()) / secs, "records/sec"};
}

/// The batched design: segments decode zero-copy into RecordBatches
/// that move through the FifoSink/BoundedQueue in byte-budgeted batches.
MetricRow BenchFifoBatched(const std::vector<std::string>& segments,
                           size_t total_records) {
  mr::FifoSink sink(mr::kDefaultShuffleFifoBatches,
                    mr::kDefaultShuffleBatchBytes);
  uint64_t consumed_bytes = 0;
  auto t0 = std::chrono::steady_clock::now();
  std::thread producer([&segments, &sink] {
    int map_task = 0;
    for (const std::string& segment : segments) {
      auto buffer = std::make_shared<const std::string>(segment);
      mr::RecordBatch batch;
      if (!mr::DecodeSegment(std::move(buffer), &batch).ok()) return;
      sink.Accept(map_task++, std::move(batch));
    }
    sink.fifo().Close();
  });
  std::vector<mr::RecordBatch> batches;
  while (sink.fifo().PopAll(&batches) > 0) {
    for (const mr::RecordBatch& batch : batches) {
      for (const mr::RecordBatch::Entry& e : batch) {
        consumed_bytes += e.key.size() + e.value.size();
      }
    }
    batches.clear();
  }
  producer.join();
  double secs = SecondsSince(t0);
  if (consumed_bytes == 0) secs = 1;
  return {"queue", "batched_records_per_sec",
          static_cast<double>(total_records) / secs, "records/sec"};
}

/// Fetch-to-reduce: decode + sink + drain + a WordCount-shaped fold
/// into an in-memory store, i.e. the consumer does real per-record work
/// against Slice keys (the transparent-lookup hot path).
MetricRow BenchFetchToReduce(const std::vector<std::string>& segments,
                             size_t total_records) {
  mr::FifoSink sink(mr::kDefaultShuffleFifoBatches,
                    mr::kDefaultShuffleBatchBytes);
  core::StoreConfig config;
  core::InMemoryStore store(config);
  auto t0 = std::chrono::steady_clock::now();
  std::thread producer([&segments, &sink] {
    int map_task = 0;
    for (const std::string& segment : segments) {
      auto buffer = std::make_shared<const std::string>(segment);
      mr::RecordBatch batch;
      if (!mr::DecodeSegment(std::move(buffer), &batch).ok()) return;
      sink.Accept(map_task++, std::move(batch));
    }
    sink.fifo().Close();
  });
  std::string partial;
  std::vector<mr::RecordBatch> batches;
  while (sink.fifo().PopAll(&batches) > 0) {
    for (const mr::RecordBatch& batch : batches) {
      for (const mr::RecordBatch::Entry& e : batch) {
        int64_t n = 0;
        bool found = false;
        if (store.Get(e.key, &partial, &found).ok() && found) {
          DecodeI64(Slice(partial), &n);
        }
        if (!store.Put(e.key, Slice(EncodeI64(n + 1))).ok()) break;
      }
    }
    batches.clear();
  }
  producer.join();
  double secs = SecondsSince(t0);
  return {"fetch_to_reduce", "records_per_sec",
          static_cast<double>(total_records) / secs, "records/sec"};
}

/// WordCount-shaped incremental fold for the tracing-overhead pair.
class CountReducer final : public core::IncrementalReducer {
 public:
  std::string InitPartial(Slice) override { return EncodeI64(0); }
  void Update(Slice, Slice value, std::string* partial,
              mr::ReduceEmitter*) override {
    int64_t acc = 0;
    DecodeI64(Slice(*partial), &acc);
    (void)value;
    *partial = EncodeI64(acc + 1);
  }
  std::string MergePartials(Slice, Slice a, Slice b) override {
    int64_t x = 0, y = 0;
    DecodeI64(a, &x);
    DecodeI64(b, &y);
    return EncodeI64(x + y);
  }
};

class NullEmitter final : public mr::ReduceEmitter {
 public:
  void Emit(Slice, Slice) override {}
};

/// The instrumented barrier-less consume path exactly as the reduce
/// task runs it — FifoSink, batched drain with queue-wait timing, a
/// drain-cycle span, and the sampled store Get/Update/Put cycle —
/// driven with `tracer` either null (tracing off) or enabled.  The
/// traced/untraced ratio is the ISSUE 5 acceptance gate: tracing on
/// must retain >= 90% of the untraced throughput.
double ObsDatapathRecordsPerSec(const std::vector<std::string>& segments,
                                size_t total_records, obs::Tracer* tracer) {
  CountReducer reducer;
  core::StoreConfig store_config;
  store_config.tracer = tracer;
  core::BarrierlessDriver driver(&reducer, store_config, Config());
  NullEmitter out;
  mr::FifoSink sink(mr::kDefaultShuffleFifoBatches,
                    mr::kDefaultShuffleBatchBytes, tracer);
  auto t0 = std::chrono::steady_clock::now();
  std::thread producer([&segments, &sink] {
    int map_task = 0;
    for (const std::string& segment : segments) {
      auto buffer = std::make_shared<const std::string>(segment);
      mr::RecordBatch batch;
      if (!mr::DecodeSegment(std::move(buffer), &batch).ok()) return;
      sink.Accept(map_task++, std::move(batch));
    }
    sink.fifo().Close();
  });
  std::vector<mr::RecordBatch> batches;
  bool ok = true;
  while (ok) {
    size_t popped;
    {
      obs::LatencyTimer wait(tracer, obs::kHShuffleQueueWaitUs);
      popped = sink.fifo().PopAll(&batches);
    }
    if (popped == 0) break;
    obs::ScopedSpan drain_span(tracer, obs::kSpanReduceBatch, "reduce", 0);
    for (const mr::RecordBatch& batch : batches) {
      for (const mr::RecordBatch::Entry& e : batch) {
        if (!driver.Consume(e.key, e.value, &out).ok()) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
    batches.clear();
  }
  producer.join();
  if (!driver.Finalize(&out).ok()) return 0;
  return static_cast<double>(total_records) / SecondsSince(t0);
}

void BenchObsOverhead(const std::vector<std::string>& segments,
                      size_t total_records, std::vector<MetricRow>* rows) {
  double untraced = 0;
  double traced = 0;
  // Best-of-3 per leg: the ratio is an acceptance gate, so damp noise.
  for (int i = 0; i < 3; ++i) {
    untraced = std::max(
        untraced, ObsDatapathRecordsPerSec(segments, total_records, nullptr));
    obs::Tracer tracer;  // fresh per run: spans/histograms don't pile up
    tracer.Enable();
    tracer.RestartClock();
    tracer.SetRootSpan(tracer.NextSpanId());
    traced = std::max(
        traced, ObsDatapathRecordsPerSec(segments, total_records, &tracer));
  }
  rows->push_back(
      {"obs", "untraced_records_per_sec", untraced, "records/sec"});
  rows->push_back({"obs", "traced_records_per_sec", traced, "records/sec"});
  // Baseline 1.125 x the 80% gate floor = 0.9: tracing may cost at most
  // 10% of untraced throughput.
  rows->push_back(
      {"obs", "trace_overhead_ratio", traced / untraced, "x"});
}

/// One codec leg of the shuffle-wire pair: wrap every framed segment in
/// the block-compressed container, then run the fetch side's full
/// decode path — per-block checksum verify, decompress into a
/// pool-backed buffer, zero-copy batch decode — and count records out.
struct CodecLeg {
  uint64_t wire_bytes = 0;
  double records_per_sec = 0;
};

CodecLeg RunCodecLeg(const std::vector<std::string>& segments,
                     size_t total_records, const char* name) {
  StatusOr<const Codec*> codec = FindCodec(name);
  if (!codec.ok()) {
    std::fprintf(stderr, "codec %s: %s\n", name,
                 codec.status().message().c_str());
    std::exit(1);
  }
  CodecLeg leg;
  std::vector<std::string> wire;
  wire.reserve(segments.size());
  ByteBuffer buf;
  for (const std::string& segment : segments) {
    buf.Clear();
    mr::EncodeShuffleSegment(Slice(segment), **codec,
                             mr::kDefaultShuffleBlockBytes, &buf);
    leg.wire_bytes += buf.size();
    wire.push_back(buf.ToString());
  }
  uint64_t consumed_bytes = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (const std::string& w : wire) {
    std::shared_ptr<const std::string> raw;
    if (!mr::DecodeShuffleSegment(Slice(w), &raw).ok()) std::exit(1);
    mr::RecordBatch batch;
    if (!mr::DecodeSegment(std::move(raw), &batch).ok()) std::exit(1);
    for (const mr::RecordBatch::Entry& e : batch) {
      consumed_bytes += e.key.size() + e.value.size();
    }
  }
  double secs = SecondsSince(t0);
  if (consumed_bytes == 0) secs = 1;
  leg.records_per_sec = static_cast<double>(total_records) / secs;
  return leg;
}

void BenchCodec(const std::vector<std::string>& segments,
                size_t total_records, std::vector<MetricRow>* rows) {
  // Best-of-3 per leg: both derived ratios are acceptance gates.
  CodecLeg none = RunCodecLeg(segments, total_records, "none");
  CodecLeg lz4 = RunCodecLeg(segments, total_records, "lz4");
  for (int i = 0; i < 2; ++i) {
    CodecLeg n = RunCodecLeg(segments, total_records, "none");
    none.records_per_sec = std::max(none.records_per_sec, n.records_per_sec);
    CodecLeg z = RunCodecLeg(segments, total_records, "lz4");
    lz4.records_per_sec = std::max(lz4.records_per_sec, z.records_per_sec);
  }
  rows->push_back({"codec", "none_decode_records_per_sec",
                   none.records_per_sec, "records/sec"});
  rows->push_back({"codec", "lz4_decode_records_per_sec",
                   lz4.records_per_sec, "records/sec"});
  // Baseline 0.375 x the 80% gate floor = 0.30: lz4 must keep at least
  // 30% of the shuffle bytes off the wire.
  rows->push_back({"codec", "lz4_wire_saved_ratio",
                   1.0 - static_cast<double>(lz4.wire_bytes) /
                             static_cast<double>(none.wire_bytes),
                   "x"});
  // Baseline 1.125 x 0.8 = 0.9: the compressed decode path must retain
  // >= 90% of the uncompressed record throughput.
  rows->push_back({"codec", "lz4_throughput_ratio",
                   lz4.records_per_sec / none.records_per_sec, "x"});
}

template <typename Store>
double StoreOpsPerSec(Store& store, const std::vector<mr::Record>& records) {
  std::string partial;
  auto t0 = std::chrono::steady_clock::now();
  for (const mr::Record& r : records) {
    int64_t n = 0;
    bool found = false;
    if (store.Get(Slice(r.key), &partial, &found).ok() && found) {
      DecodeI64(Slice(partial), &n);
    }
    if (!store.Put(Slice(r.key), Slice(EncodeI64(n + 1))).ok()) break;
  }
  // One op = one Get+Put read-modify-update cycle.
  return static_cast<double>(records.size()) / SecondsSince(t0);
}

void BenchStores(const std::vector<mr::Record>& records,
                 std::vector<MetricRow>* rows) {
  {
    core::StoreConfig config;
    core::InMemoryStore store(config);
    rows->push_back({"store", "inmemory_ops_per_sec",
                     StoreOpsPerSec(store, records), "ops/sec"});
  }
  {
    core::StoreConfig config;
    config.type = core::StoreType::kSpillMerge;
    config.spill_threshold_bytes = 1 << 20;
    core::SpillMergeStore store(config);
    rows->push_back({"store", "spillmerge_ops_per_sec",
                     StoreOpsPerSec(store, records), "ops/sec"});
  }
  {
    core::StoreConfig config;
    config.type = core::StoreType::kKvStore;
    config.kv_cache_bytes = 256 << 10;
    config.kv_ops_per_sec = 0;  // wall-clock bench: no virtual charging
    core::KvStoreBackend store(config);
    rows->push_back({"store", "kvstore_ops_per_sec",
                     StoreOpsPerSec(store, records), "ops/sec"});
  }
}

void WriteJson(const std::vector<MetricRow>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "  {\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.3f, "
                 "\"unit\": \"%s\", \"seed\": %llu}%s\n",
                 rows[i].bench.c_str(), rows[i].metric.c_str(), rows[i].value,
                 rows[i].unit.c_str(),
                 static_cast<unsigned long long>(kSeed),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_datapath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  const size_t queue_records = smoke ? 200'000 : 2'000'000;
  const size_t store_records = smoke ? 50'000 : 400'000;
  const size_t segment_bytes = 64 << 10;

  std::vector<MetricRow> rows;
  auto records = MakeRecords(queue_records, /*distinct=*/10'000);
  auto segments = EncodeSegments(records, segment_bytes);

  // Best-of-3 for the queue pair: the ratio is an acceptance gate, so
  // damp scheduler noise.
  MetricRow per_record = BenchFifoPerRecord(records);
  MetricRow batched = BenchFifoBatched(segments, records.size());
  for (int i = 0; i < 2; ++i) {
    MetricRow p = BenchFifoPerRecord(records);
    if (p.value > per_record.value) per_record = p;
    MetricRow b = BenchFifoBatched(segments, records.size());
    if (b.value > batched.value) batched = b;
  }
  rows.push_back(per_record);
  rows.push_back(batched);
  rows.push_back({"queue", "batched_speedup", batched.value / per_record.value,
                  "x"});

  rows.push_back(BenchFetchToReduce(segments, records.size()));
  BenchObsOverhead(segments, records.size(), &rows);
  BenchCodec(EncodeSegments(MakeWordRecords(queue_records), segment_bytes),
             queue_records, &rows);
  BenchStores(MakeRecords(store_records, /*distinct=*/10'000), &rows);

  WriteJson(rows, out);
  for (const MetricRow& r : rows) {
    std::printf("%-16s %-28s %14.1f %s\n", r.bench.c_str(), r.metric.c_str(),
                r.value, r.unit.c_str());
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace bmr

int main(int argc, char** argv) { return bmr::Main(argc, argv); }
