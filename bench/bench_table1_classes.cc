// Table 1: sort and memory requirements of MapReduce jobs — the seven
// Reduce classes with their key-sort requirement and partial-result
// memory complexity, plus *measured* peak partial-result footprints
// from running each application barrier-less on the real engine.
#include <cstdio>

#include "apps/knn.h"
#include "apps/registry.h"
#include "common/table.h"
#include "mr/engine.h"
#include "workload/generators.h"

using bmr::TextTable;
using bmr::apps::AllApps;
using bmr::apps::AppOptions;
using bmr::mr::ClusterContext;
using bmr::mr::JobRunner;

namespace {

/// Run `name` barrier-less at small scale; return peak partial-result
/// bytes across reducers (0 when the class keeps no per-key state).
uint64_t MeasurePeakPartialBytes(const std::string& name) {
  auto spec = bmr::cluster::SmallCluster(3, 2, 2);
  spec.dfs_block_bytes = 64 << 10;
  auto cluster = ClusterContext::Create(std::move(spec));

  AppOptions options;
  options.output_path = "/out";
  options.num_reducers = 2;
  options.barrierless = true;

  if (name == "grep") {
    bmr::workload::TextGenOptions gen;
    gen.total_bytes = 64 << 10;
    auto files = bmr::workload::GenerateZipfText(cluster.get(), "/in", gen);
    if (!files.ok()) return 0;
    options.input_files = *files;
    options.extra.Set("grep.pattern", "w1");
  } else if (name == "sort") {
    bmr::workload::IntGenOptions gen;
    gen.count = 20000;
    auto files = bmr::workload::GenerateRandomInts(cluster.get(), "/in", gen);
    if (!files.ok()) return 0;
    options.input_files = *files;
  } else if (name == "wordcount") {
    bmr::workload::TextGenOptions gen;
    gen.total_bytes = 128 << 10;
    gen.vocabulary = 2000;
    auto files = bmr::workload::GenerateZipfText(cluster.get(), "/in", gen);
    if (!files.ok()) return 0;
    options.input_files = *files;
  } else if (name == "knn") {
    bmr::workload::KnnGenOptions gen;
    gen.experimental_count = 2000;
    gen.training_size = 100;
    auto data = bmr::workload::GenerateKnnData(cluster.get(), "/in", gen);
    if (!data.ok()) return 0;
    options.input_files = data->experimental_files;
    options.extra.SetInt("knn.k", 10);
    options.extra.Set("knn.training",
                      bmr::apps::EncodeTrainingSet(data->training));
  } else if (name == "lastfm") {
    bmr::workload::ListenGenOptions gen;
    gen.count = 20000;
    auto files = bmr::workload::GenerateListens(cluster.get(), "/in", gen);
    if (!files.ok()) return 0;
    options.input_files = *files;
  } else if (name == "genetic") {
    bmr::workload::PopulationGenOptions gen;
    gen.population = 20000;
    auto files = bmr::workload::GeneratePopulation(cluster.get(), "/in", gen);
    if (!files.ok()) return 0;
    options.input_files = *files;
    options.extra.SetInt("ga.window", 16);
  } else if (name == "blackscholes") {
    bmr::workload::BlackScholesGenOptions gen;
    gen.num_mappers = 2;
    gen.iterations_per_mapper = 20000;
    auto files =
        bmr::workload::GenerateBlackScholesUnits(cluster.get(), "/in", gen);
    if (!files.ok()) return 0;
    options.input_files = *files;
  }

  const auto* app = bmr::apps::FindApp(name);
  if (app == nullptr) return 0;
  JobRunner runner(cluster.get());
  auto result = runner.Run(app->make_job(options));
  if (!result.ok()) return 0;
  uint64_t peak = 0;
  for (const auto& sample : result.memory_samples) {
    peak = std::max(peak, sample.bytes);
  }
  return peak;
}

}  // namespace

int main() {
  std::printf(
      "== Table 1: sort and memory requirements of MapReduce jobs ==\n"
      "('peak partials' measured on the real engine, barrier-less mode,\n"
      " small inputs; it scales with the stated complexity class)\n\n");
  TextTable table({"Application", "Reduce class", "Key sort",
                   "Partial results", "peak partials (B, measured)"});
  for (const auto& app : AllApps()) {
    table.AddRow({app.application, app.reduce_class,
                  app.key_sort_required ? "Yes" : "No", app.partial_results,
                  TextTable::Int(static_cast<long long>(
                      MeasurePeakPartialBytes(app.name)))});
  }
  table.Print();
  return 0;
}
