// Table 2: programmer effort — lines of code of each application's
// with-barrier implementation vs its barrier-less counterpart,
// measured directly from this repository's sources (class-body line
// counts, the code a programmer actually writes per mode).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"

using bmr::TextTable;

namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Count the source lines of `class <name> ... { ... };` by brace
/// matching from the declaration.
int ClassLines(const std::string& source, const std::string& name) {
  size_t pos = source.find("class " + name);
  if (pos == std::string::npos) return 0;
  size_t open = source.find('{', pos);
  if (open == std::string::npos) return 0;
  int depth = 0;
  size_t end = open;
  for (size_t i = open; i < source.size(); ++i) {
    if (source[i] == '{') ++depth;
    if (source[i] == '}') {
      if (--depth == 0) {
        end = i;
        break;
      }
    }
  }
  int lines = 1;
  for (size_t i = pos; i < end; ++i) {
    if (source[i] == '\n') ++lines;
  }
  return lines;
}

struct AppLoc {
  const char* label;
  const char* file;
  std::vector<std::string> barrier_classes;
  std::vector<std::string> barrierless_classes;
};

}  // namespace

int main() {
  std::printf(
      "== Table 2: programmer effort (lines of code per mode) ==\n"
      "Counted from this repo's app sources: the classes a programmer\n"
      "writes for the original vs the barrier-less program.  The paper's\n"
      "Table 2 pattern: Sort inflates the most (the framework used to\n"
      "sort for free), aggregations grow modestly, GA and Black-Scholes\n"
      "barely change (flag flip).\n\n");

  const std::string src = std::string(BMR_SOURCE_DIR) + "/src/apps/";
  std::vector<AppLoc> apps = {
      {"Sort", "sort.cc",
       {"SortMapper", "SortReducer"},
       {"SortMapper", "SortIncremental"}},
      {"WordCount", "wordcount.cc",
       {"WordCountMapper", "WordCountReducer"},
       {"WordCountMapper", "WordCountIncremental"}},
      {"k-Nearest Neighbors", "knn.cc",
       {"KnnBarrierMapper", "KnnBarrierReducer"},
       {"KnnIncrementalMapper", "KnnIncremental"}},
      {"Post Processing", "lastfm.cc",
       {"ListenMapper", "ListenReducer"},
       {"ListenMapper", "ListenIncremental"}},
      {"Genetic Algorithm", "genetic.cc",
       {"GaMapper", "GaWindow", "GaReducer"},
       {"GaMapper", "GaWindow", "GaIncremental"}},
      {"Black-Scholes", "blackscholes.cc",
       {"BsMapper", "BsReducer"},
       {"BsMapper", "BsIncremental"}},
  };

  TextTable table({"Application", "Original", "Barrier-less", "% increase"});
  for (const auto& app : apps) {
    std::string source = ReadFile(src + app.file);
    int original = 0, barrierless = 0;
    for (const auto& c : app.barrier_classes) {
      original += ClassLines(source, c);
    }
    for (const auto& c : app.barrierless_classes) {
      barrierless += ClassLines(source, c);
    }
    double increase =
        original > 0 ? (barrierless - original) * 100.0 / original : 0;
    table.AddRow({app.label, TextTable::Int(original),
                  TextTable::Int(barrierless), TextTable::Pct(increase, 0)});
  }
  table.Print();
  return 0;
}
