// Figure 9: WordCount (16 GB) completion time vs number of reducers,
// comparing memory-management schemes: with-barrier baseline,
// barrier-less in-memory (OOMs below ~25 reducers), barrier-less
// spill-and-merge (always completes, still beats the baseline), and
// the BerkeleyDB-like KV store (cannot keep up with the record rate).
#include <cstdio>

#include "common/table.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"

using bmr::TextTable;
using bmr::cluster::PaperCluster;
using bmr::core::StoreType;
using bmr::simmr::SimJob;
using bmr::simmr::SimResult;
using bmr::simmr::SimulateJob;

namespace {

std::string RunCell(SimJob job) {
  SimResult result = SimulateJob(PaperCluster(), job);
  if (result.failed_oom) {
    return "OOM@" + TextTable::Num(result.failure_time, 0) + "s";
  }
  return TextTable::Num(result.completion_seconds, 0);
}

}  // namespace

int main() {
  std::printf(
      "== Figure 9: WordCount 16 GB — memory schemes vs #reducers ==\n"
      "(reducer heap 1.4 GB; spill threshold 240 MB; KV store 30k ops/s)\n\n");
  TextTable table({"reducers", "with_barrier_s", "in_memory_s",
                   "spill_merge_s", "berkeleydb_s"});
  for (int reducers : {5, 10, 15, 20, 25, 30, 40, 50, 60, 70}) {
    SimJob base = bmr::simmr::WordCountSim(16.0, reducers);

    SimJob barrier = base;
    barrier.barrierless = false;

    SimJob in_memory = base;
    in_memory.barrierless = true;
    in_memory.store.type = StoreType::kInMemory;
    in_memory.store.heap_limit_bytes = 1400ull << 20;

    SimJob spill = base;
    spill.barrierless = true;
    spill.store.type = StoreType::kSpillMerge;
    spill.store.spill_threshold_bytes = 240ull << 20;

    SimJob kv = base;
    kv.barrierless = true;
    kv.store.type = StoreType::kKvStore;
    kv.store.kv_ops_per_sec = 30000;

    table.AddRow({TextTable::Int(reducers), RunCell(barrier),
                  RunCell(in_memory), RunCell(spill), RunCell(kv)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: in-memory fastest but OOMs at low reducer\n"
      "counts; spill-merge slightly slower, always completes, beats the\n"
      "barrier; BerkeleyDB cannot keep up with millions of small\n"
      "records per reducer.\n");
  return 0;
}
