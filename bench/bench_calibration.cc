// Cost-model calibration: per-record costs of the real engine's hot
// paths on THIS machine, shown against the simulator's profile
// constants.  Absolute values differ from 2010-era JVMs; the *ratios*
// (red-black fold vs merge+reduce) are what the figure shapes rely on.
#include <cstdio>

#include "common/table.h"
#include "simmr/calibrate.h"
#include "simmr/profiles.h"

using bmr::TextTable;
using bmr::simmr::MeasureAggregationCosts;
using bmr::simmr::MeasureSortCosts;
using bmr::simmr::MicroCosts;

int main() {
  std::printf("== Simulator cost-model calibration (real engine) ==\n\n");

  MicroCosts agg = MeasureAggregationCosts(/*records=*/400000,
                                           /*distinct=*/20000, /*runs=*/8,
                                           /*seed=*/1);
  MicroCosts sort = MeasureSortCosts(/*records=*/300000, /*runs=*/8,
                                     /*seed=*/2);

  TextTable table({"workload", "merge us/rec", "grouped-reduce us/rec",
                   "incremental us/rec", "finalize us/key",
                   "fold/merge ratio"});
  auto row = [&table](const MicroCosts& c) {
    double barrier = c.merge_secs_per_record + c.grouped_reduce_secs_per_record;
    table.AddRow(
        {c.workload, TextTable::Num(c.merge_secs_per_record * 1e6, 3),
         TextTable::Num(c.grouped_reduce_secs_per_record * 1e6, 3),
         TextTable::Num(c.incremental_secs_per_record * 1e6, 3),
         TextTable::Num(c.finalize_secs_per_key * 1e6, 3),
         TextTable::Num(barrier > 0 ? c.incremental_secs_per_record / barrier
                                    : 0,
                        2)});
  };
  row(agg);
  row(sort);
  table.Print();

  std::printf(
      "\nInterpretation:\n"
      " - 'sort' (unique keys, O(records) tree) folds several times\n"
      "   slower per record than the streaming merge — the mechanism\n"
      "   behind the Fig. 6(a) slowdown.  Profile uses %.1fx.\n"
      " - 'aggregation' (Zipf keys) folds cheaply relative to the\n"
      "   barrier's merge+reduce, so pipelining wins.  Profile uses\n"
      "   %.1fx.\n",
      4.1 / (1.1 + 0.25), 1.8 / (1.0 + 0.6));

  auto wc = bmr::simmr::WordCountSim(3.0);
  auto st = bmr::simmr::SortSim(3.0);
  std::printf(
      "\nProfile constants (us/record): wc merge=%.2f reduce=%.2f fold=%.2f;"
      " sort merge=%.2f reduce=%.2f fold=%.2f\n",
      wc.merge_cost_per_record * 1e6, wc.reduce_cost_per_record * 1e6,
      wc.incremental_cost_per_record * 1e6, st.merge_cost_per_record * 1e6,
      st.reduce_cost_per_record * 1e6,
      st.incremental_cost_per_record * 1e6);
  return 0;
}
