// Figure 6 (a)-(f): job completion times, with vs without barrier, for
// all six evaluated applications, swept over input size / mapper count
// on the simulated 16-node paper cluster.
#include <cstdio>

#include "common/table.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"

namespace {

using bmr::SeriesPrinter;
using bmr::cluster::PaperCluster;
using bmr::simmr::SimJob;
using bmr::simmr::SimulateJob;

void SweepSizes(const char* title, SimJob (*make)(double, int),
                int num_reducers) {
  SeriesPrinter series(title, "input_GB",
                       {"with_barrier_s", "without_barrier_s", "improv_%"});
  for (double gb : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0}) {
    SimJob job = make(gb, num_reducers);
    job.barrierless = false;
    double with = SimulateJob(PaperCluster(), job).completion_seconds;
    job.barrierless = true;
    double without = SimulateJob(PaperCluster(), job).completion_seconds;
    series.AddPoint(gb, {with, without, (with - without) / with * 100});
  }
  series.Print();
}

void SweepMappers(const char* title, SimJob (*make)(int),
                  std::initializer_list<int> mappers) {
  SeriesPrinter series(title, "num_mappers",
                       {"with_barrier_s", "without_barrier_s", "improv_%"});
  for (int m : mappers) {
    SimJob job = make(m);
    job.barrierless = false;
    double with = SimulateJob(PaperCluster(), job).completion_seconds;
    job.barrierless = true;
    double without = SimulateJob(PaperCluster(), job).completion_seconds;
    series.AddPoint(m, {with, without, (with - without) / with * 100});
  }
  series.Print();
}

}  // namespace

int main() {
  std::printf(
      "== Figure 6: job completion times of the six case studies ==\n"
      "Simulated 16-node cluster (15 slaves x 4 map + 4 reduce slots,\n"
      "GbE, 64MB blocks), paper workloads.  Expected shapes: (a) Sort\n"
      "slightly slower without barrier; (b)-(e) 15-25%% faster;\n"
      "(f) Black-Scholes much faster, growing with mapper count.\n\n");

  SweepSizes("Fig 6(a) Sort", bmr::simmr::SortSim, 60);
  SweepSizes("Fig 6(b) WordCount", bmr::simmr::WordCountSim, 60);
  SweepSizes("Fig 6(c) k-Nearest Neighbors (k=10)", bmr::simmr::KnnSim, 60);
  SweepSizes("Fig 6(d) Last.fm unique listens", bmr::simmr::LastFmSim, 60);

  {
    SeriesPrinter series("Fig 6(e) Genetic algorithm (40 reducers)",
                         "num_mappers",
                         {"with_barrier_s", "without_barrier_s", "improv_%"});
    for (int m : {25, 50, 75, 100, 150, 200, 250}) {
      SimJob job = bmr::simmr::GeneticSim(m);
      job.barrierless = false;
      double with = SimulateJob(PaperCluster(), job).completion_seconds;
      job.barrierless = true;
      double without = SimulateJob(PaperCluster(), job).completion_seconds;
      series.AddPoint(m, {with, without, (with - without) / with * 100});
    }
    series.Print();
  }
  SweepMappers("Fig 6(f) Black-Scholes (single reducer)",
               bmr::simmr::BlackScholesSim,
               {10, 25, 50, 75, 100, 150, 200, 300});
  return 0;
}
