// Figure 8: genetic algorithm completion time vs number of reducers
// (30 → 70, on 60 reduce slots).  The improvement shrinks as reducer
// count approaches the slot capacity (less mapper slack per reducer)
// and grows again past it, when a second reduce wave must re-shuffle.
#include <cstdio>

#include "common/table.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"

using bmr::SeriesPrinter;
using bmr::cluster::PaperCluster;
using bmr::simmr::SimJob;
using bmr::simmr::SimulateJob;

int main() {
  std::printf(
      "== Figure 8: GA (100 mappers) with varying reducers ==\n"
      "60 reduce slots; 70 reducers forces a second reduce wave.\n\n");
  SeriesPrinter series("GA completion vs reducers", "num_reducers",
                       {"with_barrier_s", "without_barrier_s", "improv_%"});
  for (int reducers : {30, 35, 40, 45, 50, 55, 60, 65, 70}) {
    SimJob job = bmr::simmr::GeneticSim(/*num_mappers=*/100, reducers);
    job.barrierless = false;
    double with = SimulateJob(PaperCluster(), job).completion_seconds;
    job.barrierless = true;
    double without = SimulateJob(PaperCluster(), job).completion_seconds;
    series.AddPoint(reducers, {with, without, (with - without) / with * 100});
  }
  series.Print();
  std::printf(
      "Expected shape: completion time falls toward 60 reducers, then\n"
      "jumps at 70 (second wave); improvement dips near full\n"
      "utilization and recovers past it.\n");
  return 0;
}
