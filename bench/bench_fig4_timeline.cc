// Figure 4: system-wide progress of WordCount on a 3 GB dataset, with
// and without the barrier — the number of tasks active in each phase
// over time.  The with-barrier run shows the gap between the last Map
// and the first Reduce; the barrier-less run shows Shuffle+Reduce
// starting as soon as the first mappers complete and finishing shortly
// after the last one.
#include <cstdio>

#include "mr/timeline.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"

using bmr::cluster::PaperCluster;
using bmr::mr::Phase;
using bmr::mr::Timeline;
using bmr::simmr::SimJob;
using bmr::simmr::SimResult;
using bmr::simmr::SimulateJob;

namespace {

void PrintActivity(const SimResult& result, bool barrierless) {
  const auto& events = result.events;
  double horizon = result.completion_seconds;
  std::printf("%s\n", barrierless
                          ? "time\tMap\tShuffle+Reduce\tOutput"
                          : "time\tMap\tShuffle\tSort\tReduce\tOutput");
  double step = horizon / 40;
  for (double t = 0; t <= horizon + step / 2; t += step) {
    if (barrierless) {
      std::printf("%.0f\t%d\t%d\t%d\n", t,
                  Timeline::ActiveAt(events, Phase::kMap, t),
                  Timeline::ActiveAt(events, Phase::kShuffleReduce, t),
                  Timeline::ActiveAt(events, Phase::kOutput, t));
    } else {
      std::printf("%.0f\t%d\t%d\t%d\t%d\t%d\n", t,
                  Timeline::ActiveAt(events, Phase::kMap, t),
                  Timeline::ActiveAt(events, Phase::kShuffle, t),
                  Timeline::ActiveAt(events, Phase::kSortMerge, t),
                  Timeline::ActiveAt(events, Phase::kReduce, t),
                  Timeline::ActiveAt(events, Phase::kOutput, t));
    }
  }
}

}  // namespace

int main() {
  std::printf("== Figure 4: WordCount progress on 3 GB, 16-node cluster ==\n");
  SimJob job = bmr::simmr::WordCountSim(3.0);

  job.barrierless = false;
  SimResult with = SimulateJob(PaperCluster(), job);
  std::printf("\n(a) With barrier: job completes at %.0fs "
              "(last map %.0fs, mapper slack %.0fs)\n",
              with.completion_seconds, with.last_map_done, with.mapper_slack);
  PrintActivity(with, false);

  job.barrierless = true;
  SimResult without = SimulateJob(PaperCluster(), job);
  std::printf("\n(b) Without barrier: job completes at %.0fs "
              "(last map %.0fs — reduce work rides the mapper slack)\n",
              without.completion_seconds, without.last_map_done);
  PrintActivity(without, true);

  double gain = (with.completion_seconds - without.completion_seconds) /
                with.completion_seconds * 100;
  std::printf("\nImprovement in job completion time: %.0f%% "
              "(the paper reports 30%% for this experiment)\n", gain);
  return 0;
}
