// Multi-tenant job-service benchmark: drives the fair-share JobService
// to saturation with two equal-weight tenants and measures sustained
// completed-job throughput, the fairness of the completion stream, and
// p99 submit-to-completion latency.  Emits machine-readable
// BENCH_service.json (schema: {bench, metric, value, unit, seed} per
// row) consumed by the scripts/bench.sh regression gate — every gated
// metric is higher-is-better, so latency is reported as its inverse.
//
//   bench_service [--smoke] [--out FILE]
//
// --smoke shrinks the workload for CI; --out defaults to
// BENCH_service.json in the working directory.
//
// Baseline notes (bench/BENCH_service.baseline.json): the
// fair_share_min_fraction baseline of 0.5 makes the gate's 80% floor
// exactly 0.4 — the 50%±10% per-tenant throughput acceptance bar.  The
// throughput and inverse-latency baselines are deliberately
// conservative, catching structural regressions (a serialized
// dispatch path, a starved tenant) rather than machine noise.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/wordcount.h"
#include "cluster/cluster.h"
#include "mr/engine.h"
#include "service/job_service.h"
#include "workload/generators.h"

namespace bmr {
namespace {

constexpr uint64_t kSeed = 42;

struct MetricRow {
  std::string bench;
  std::string metric;
  double value;
  std::string unit;
};

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void WriteJson(const std::vector<MetricRow>& rows, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(f,
                 "  {\"bench\": \"%s\", \"metric\": \"%s\", \"value\": %.3f, "
                 "\"unit\": \"%s\", \"seed\": %llu}%s\n",
                 rows[i].bench.c_str(), rows[i].metric.c_str(), rows[i].value,
                 rows[i].unit.c_str(), static_cast<unsigned long long>(kSeed),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_service.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  const int jobs_per_tenant = smoke ? 12 : 40;
  const uint64_t input_bytes = smoke ? (8 << 10) : (128 << 10);

  auto spec = cluster::SmallCluster(4, 2, 2);
  spec.dfs_block_bytes = 64 << 10;
  auto cluster = mr::ClusterContext::Create(std::move(spec));

  workload::TextGenOptions gen;
  gen.total_bytes = input_bytes;
  gen.num_files = 2;
  gen.vocabulary = 500;
  gen.seed = kSeed;
  auto files = workload::GenerateZipfText(cluster.get(), "/in", gen);
  if (!files.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 files.status().ToString().c_str());
    return 1;
  }

  service::JobService::Options options;
  options.max_running_jobs = 2;
  options.max_queued_jobs = 256;
  service::JobService svc(cluster.get(), options);
  for (const char* pool : {"tenant-a", "tenant-b"}) {
    service::PoolConfig config;
    config.name = pool;
    config.weight = 1.0;
    config.queue_limit = 256;
    if (Status st = svc.AddPool(config); !st.ok()) {
      std::fprintf(stderr, "AddPool: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Saturate: both tenants dump their whole backlog up front, so every
  // dispatch decision chooses between two pools with queued demand.
  std::vector<service::JobTicket> tickets;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < jobs_per_tenant; ++i) {
    for (const char* pool : {"tenant-a", "tenant-b"}) {
      apps::AppOptions job;
      job.input_files = *files;
      job.num_reducers = 1;
      job.output_path =
          std::string("/out/") + pool + "-" + std::to_string(i);
      auto ticket = svc.Submit(pool, apps::MakeWordCountJob(job));
      if (!ticket.ok()) {
        std::fprintf(stderr, "Submit: %s\n", ticket.status().ToString().c_str());
        return 1;
      }
      tickets.push_back(*ticket);
    }
  }

  std::vector<double> latencies;
  latencies.reserve(tickets.size());
  for (const service::JobTicket& ticket : tickets) {
    service::JobOutcome outcome = svc.Wait(ticket);
    if (!outcome.status.ok()) {
      std::fprintf(stderr, "job failed: %s\n",
                   outcome.status.ToString().c_str());
      return 1;
    }
    latencies.push_back(outcome.latency_seconds);
  }
  double wall = SecondsSince(t0);
  const size_t total_jobs = tickets.size();

  // Fairness window: the first half of the completion stream, while
  // BOTH tenants still hold queued demand — the saturated regime the
  // 50%±10% acceptance bar speaks about.
  std::vector<std::string> order = svc.CompletionOrder();
  size_t window = total_jobs / 2;
  size_t a_done = 0;
  for (size_t i = 0; i < window; ++i) {
    if (order[i] == "tenant-a") ++a_done;
  }
  double a_fraction = static_cast<double>(a_done) / window;
  double min_fraction = std::min(a_fraction, 1.0 - a_fraction);

  std::sort(latencies.begin(), latencies.end());
  double p99 = latencies[(latencies.size() * 99) / 100];

  std::vector<MetricRow> rows;
  rows.push_back({"service", "jobs_per_sec",
                  static_cast<double>(total_jobs) / wall, "jobs/sec"});
  rows.push_back(
      {"service", "fair_share_min_fraction", min_fraction, "fraction"});
  rows.push_back(
      {"service", "p99_latency_inv_per_s", p99 > 0 ? 1.0 / p99 : 0, "1/sec"});
  // Informational (not in the baseline, so not gated): the raw p99.
  rows.push_back({"service", "p99_latency_s", p99, "sec"});

  WriteJson(rows, out);
  for (const MetricRow& r : rows) {
    std::printf("%-16s %-28s %14.3f %s\n", r.bench.c_str(), r.metric.c_str(),
                r.value, r.unit.c_str());
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace bmr

int main(int argc, char** argv) { return bmr::Main(argc, argv); }
