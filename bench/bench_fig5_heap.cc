// Figure 5: reducer heap usage over time for WordCount on 16 GB with
// 10 reducers.  (a) keeping the whole partial-result TreeMap in memory
// overruns the 1.4 GB heap and the job is killed; (b) disk
// spill-and-merge with a 240 MB threshold stays bounded and completes.
#include <algorithm>
#include <cstdio>

#include "core/partial_store.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"

using bmr::cluster::PaperCluster;
using bmr::simmr::SimJob;
using bmr::simmr::SimResult;
using bmr::simmr::SimulateJob;

namespace {

void PrintHeapCurve(const SimResult& result, double heap_cap_mb) {
  // Reducer 0's samples, piecewise.
  std::printf("time_s\theap_MB\t(max %.0f MB)\n", heap_cap_mb);
  double last_t = -1;
  for (const auto& s : result.memory_samples) {
    if (s.reducer != 0) continue;
    if (s.t - last_t < 1.0) continue;  // thin out for readability
    std::printf("%.0f\t%.0f\n", s.t, s.bytes / (1 << 20));
    last_t = s.t;
  }
}

}  // namespace

int main() {
  std::printf("== Figure 5: WordCount 16 GB, 10 reducers, barrier-less ==\n");
  const double heap_mb = 1400;

  SimJob job = bmr::simmr::WordCountSim(16.0, /*num_reducers=*/10);
  job.barrierless = true;

  // (a) in-memory partial results with a JVM-style heap cap.
  job.store.type = bmr::core::StoreType::kInMemory;
  job.store.heap_limit_bytes = static_cast<uint64_t>(heap_mb) << 20;
  SimResult in_memory = SimulateJob(PaperCluster(), job);
  std::printf("\n(a) In-memory TreeMap: %s",
              in_memory.failed_oom ? "job KILLED by out-of-memory\n"
                                   : "job completed (unexpected)\n");
  if (in_memory.failed_oom) {
    std::printf("    heap exhausted at t=%.0fs\n", in_memory.failure_time);
  }
  PrintHeapCurve(in_memory, heap_mb);

  // (b) disk spill-and-merge, 240 MB threshold.
  job.store.type = bmr::core::StoreType::kSpillMerge;
  job.store.heap_limit_bytes = 0;
  job.store.spill_threshold_bytes = 240ull << 20;
  SimResult spill = SimulateJob(PaperCluster(), job);
  std::printf("\n(b) Disk spill and merge (240 MB threshold): %s, "
              "completes at %.0fs\n",
              spill.ok() ? "bounded memory" : spill.status.ToString().c_str(),
              spill.completion_seconds);
  PrintHeapCurve(spill, heap_mb);

  double peak = 0;
  for (const auto& s : spill.memory_samples) peak = std::max(peak, s.bytes);
  std::printf("\npeak heap with spill-merge: %.0f MB (threshold 240 MB)\n",
              peak / (1 << 20));
  return 0;
}
