// Figure 10: WordCount completion time vs dataset size for the four
// memory-management schemes, at a fixed reducer count.
#include <cstdio>

#include "common/table.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"

using bmr::TextTable;
using bmr::cluster::PaperCluster;
using bmr::core::StoreType;
using bmr::simmr::SimJob;
using bmr::simmr::SimResult;
using bmr::simmr::SimulateJob;

namespace {

std::string RunCell(SimJob job) {
  SimResult result = SimulateJob(PaperCluster(), job);
  if (result.failed_oom) {
    return "OOM@" + TextTable::Num(result.failure_time, 0) + "s";
  }
  return TextTable::Num(result.completion_seconds, 0);
}

}  // namespace

int main() {
  std::printf(
      "== Figure 10: WordCount — memory schemes vs dataset size ==\n"
      "(60 reducers; heap 1.4 GB; spill threshold 240 MB; KV 30k ops/s)\n\n");
  TextTable table({"input_GB", "with_barrier_s", "in_memory_s",
                   "spill_merge_s", "berkeleydb_s"});
  for (double gb : {2.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0}) {
    SimJob base = bmr::simmr::WordCountSim(gb, 60);

    SimJob barrier = base;
    barrier.barrierless = false;

    SimJob in_memory = base;
    in_memory.barrierless = true;
    in_memory.store.type = StoreType::kInMemory;
    in_memory.store.heap_limit_bytes = 1400ull << 20;

    SimJob spill = base;
    spill.barrierless = true;
    spill.store.type = StoreType::kSpillMerge;
    spill.store.spill_threshold_bytes = 240ull << 20;

    SimJob kv = base;
    kv.barrierless = true;
    kv.store.type = StoreType::kKvStore;
    kv.store.kv_ops_per_sec = 30000;

    table.AddRow({TextTable::Num(gb, 0), RunCell(barrier),
                  RunCell(in_memory), RunCell(spill), RunCell(kv)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: both barrier-less in-memory and spill-merge\n"
      "outperform the original as size grows; the KV store cannot keep\n"
      "up with the record access rate at any size.\n");
  return 0;
}
