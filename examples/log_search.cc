// Distributed grep over synthetic service logs — the Identity Reduce
// class, where barrier and barrier-less programs are the same code.
//
//   $ ./log_search [pattern]        (default: "ERROR")
#include <cstdio>
#include <string>

#include "apps/grep.h"
#include "common/rng.h"
#include "mr/engine.h"

using bmr::mr::ClusterContext;
using bmr::mr::JobRunner;
using bmr::mr::Record;

namespace {

/// Synthesizes an httpd-ish log file.
std::string MakeLog(uint64_t seed, int lines) {
  static const char* kLevels[] = {"INFO", "INFO", "INFO", "WARN", "ERROR"};
  static const char* kOps[] = {"GET /index", "GET /api/v1/items",
                               "POST /api/v1/items", "GET /health",
                               "PUT /api/v1/items"};
  bmr::Pcg32 rng(seed);
  std::string log;
  for (int i = 0; i < lines; ++i) {
    const char* level = kLevels[rng.NextBounded(5)];
    const char* op = kOps[rng.NextBounded(5)];
    log += "2010-09-20T12:" + std::to_string(10 + rng.NextBounded(49)) +
           " node" + std::to_string(rng.NextBounded(16)) + " " + level +
           " " + op + " " + std::to_string(rng.NextBounded(900) + 100) +
           "ms\n";
  }
  return log;
}

}  // namespace

int main(int argc, char** argv) {
  std::string pattern = argc > 1 ? argv[1] : "ERROR";

  auto spec = bmr::cluster::SmallCluster(4);
  spec.dfs_block_bytes = 128 << 10;
  auto cluster = ClusterContext::Create(std::move(spec));

  // One log file per "service", written from different nodes.
  std::vector<std::string> files;
  for (int service = 0; service < 4; ++service) {
    std::string path = "/logs/service-" + std::to_string(service) + ".log";
    auto st = cluster->client(1 + service % 4)
                  ->WriteFile(path, MakeLog(service + 1, 4000));
    if (!st.ok()) {
      std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    files.push_back(path);
  }

  bmr::apps::AppOptions options;
  options.input_files = files;
  options.output_path = "/out/grep";
  options.num_reducers = 2;
  options.barrierless = true;  // Identity: same program either way
  options.extra.Set("grep.pattern", pattern);

  JobRunner runner(cluster.get());
  auto result = runner.Run(bmr::apps::MakeGrepJob(options));
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n", result.status.ToString().c_str());
    return 1;
  }
  auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
  if (!output.ok()) return 1;

  std::printf("pattern %-8s -> %zu matching lines out of 16000 "
              "(%.2fs)\n", ("\"" + pattern + "\"").c_str(), output->size(),
              result.elapsed_seconds);
  for (size_t i = 0; i < 5 && i < output->size(); ++i) {
    std::printf("  %s\n", (*output)[i].value.c_str());
  }
  if (output->size() > 5) std::printf("  ...\n");
  return 0;
}
