// Last.fm-style unique-listener counting — the Post-reduction
// processing class, demonstrating the partial-result overflow
// machinery: the same job runs with the in-memory store and with
// disk spill-and-merge under an artificially tiny threshold.
//
//   $ ./unique_listeners
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/lastfm.h"
#include "common/serde.h"
#include "mr/engine.h"
#include "workload/generators.h"

using bmr::mr::ClusterContext;
using bmr::mr::JobRunner;
using bmr::mr::Record;

int main() {
  auto spec = bmr::cluster::SmallCluster(4);
  spec.dfs_block_bytes = 256 << 10;
  auto cluster = ClusterContext::Create(std::move(spec));

  bmr::workload::ListenGenOptions gen;
  gen.count = 120000;
  gen.num_users = 500;
  gen.num_tracks = 2000;
  gen.seed = 21;
  auto files = bmr::workload::GenerateListens(cluster.get(), "/listens", gen);
  if (!files.ok()) {
    std::fprintf(stderr, "%s\n", files.status().ToString().c_str());
    return 1;
  }

  JobRunner runner(cluster.get());
  std::vector<Record> reference;
  for (bool spill : {false, true}) {
    bmr::apps::AppOptions options;
    options.input_files = *files;
    options.output_path = spill ? "/out/spill" : "/out/mem";
    options.num_reducers = 3;
    options.barrierless = true;
    if (spill) {
      options.store.type = bmr::core::StoreType::kSpillMerge;
      options.store.spill_threshold_bytes = 32 << 10;  // force many spills
    }
    auto result = runner.Run(bmr::apps::MakeLastFmJob(options));
    if (!result.ok()) {
      std::fprintf(stderr, "job failed: %s\n",
                   result.status.ToString().c_str());
      return 1;
    }
    auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
    if (!output.ok()) return 1;
    std::sort(output->begin(), output->end(),
              [](const Record& a, const Record& b) { return a.key < b.key; });

    std::printf("%-12s: %zu tracks, %llu partial-result spills, %.2fs\n",
                spill ? "spill-merge" : "in-memory", output->size(),
                (unsigned long long)result.counters.Get(bmr::mr::kCtrSpills),
                result.elapsed_seconds);
    if (!spill) {
      reference = std::move(*output);
    } else if (reference == *output) {
      std::printf("spill-merge output is byte-identical to in-memory.\n");
    } else {
      std::printf("MISMATCH between stores!\n");
      return 1;
    }
  }

  // Show a few of the busiest tracks.
  std::vector<std::pair<int64_t, std::string>> ranked;
  for (const Record& r : reference) {
    int64_t n = 0;
    bmr::DecodeI64(bmr::Slice(r.value), &n);
    ranked.emplace_back(n, r.key);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("\nmost-listened tracks (unique listeners):\n");
  for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
    std::printf("  %-8s %lld listeners\n", ranked[i].second.c_str(),
                (long long)ranked[i].first);
  }
  return 0;
}
