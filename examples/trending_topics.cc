// Online aggregation with progressive snapshots: watch "trending
// topics" firm up while records are still streaming in — the
// online-processing capability that §7 of the paper contrasts with
// batch-only barriers (cf. MapReduce Online).
//
// Uses the barrier-less driver directly: a stream of (topic, 1)
// mentions is folded into a partial-result store, and every N records
// a snapshot of the current top topics is printed — no barrier, no
// waiting for the stream to end.
//
//   $ ./trending_topics
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/serde.h"
#include "core/barrierless_driver.h"
#include "mr/emitter.h"
#include "mr/types.h"

namespace {

/// Running count per topic.
class TopicCounter final : public bmr::core::IncrementalReducer {
 public:
  std::string InitPartial(bmr::Slice) override { return bmr::EncodeI64(0); }
  void Update(bmr::Slice, bmr::Slice value, std::string* partial,
              bmr::mr::ReduceEmitter*) override {
    int64_t acc = 0, v = 0;
    bmr::DecodeI64(bmr::Slice(*partial), &acc);
    bmr::DecodeI64(value, &v);
    *partial = bmr::EncodeI64(acc + v);
  }
  std::string MergePartials(bmr::Slice, bmr::Slice a, bmr::Slice b) override {
    int64_t x = 0, y = 0;
    bmr::DecodeI64(a, &x);
    bmr::DecodeI64(b, &y);
    return bmr::EncodeI64(x + y);
  }
};

const char* kTopics[] = {"worldcup", "elections", "mapreduce", "weather",
                         "music",    "movies",    "science",   "sports"};

}  // namespace

int main() {
  TopicCounter reducer;
  bmr::core::StoreConfig store;  // in-memory; swap for kSpillMerge at scale
  bmr::Config config;
  bmr::core::BarrierlessDriver driver(&reducer, store, config);

  std::vector<bmr::mr::Record> sink;
  bmr::mr::VectorEmitter<std::vector<bmr::mr::Record>> emitter(&sink);

  // Simulated mention stream whose topic mix drifts over time.
  bmr::Pcg32 rng(5);
  const int kBatches = 4;
  const int kPerBatch = 25000;
  for (int batch = 0; batch < kBatches; ++batch) {
    bmr::ZipfGenerator zipf(8, 1.0, 100 + batch * 7);  // drifting skew
    for (int i = 0; i < kPerBatch; ++i) {
      const char* topic = kTopics[(zipf.Next() + batch) % 8];
      if (!driver.Consume(topic, bmr::EncodeI64(1), &emitter).ok()) return 1;
    }

    // Snapshot the stream so far — folding continues afterwards.
    std::vector<bmr::mr::Record> snapshot;
    bmr::mr::VectorEmitter<std::vector<bmr::mr::Record>> snap(&snapshot);
    if (!driver.EmitSnapshot(&snap).ok()) return 1;
    std::vector<std::pair<int64_t, std::string>> ranked;
    for (const auto& r : snapshot) {
      int64_t n = 0;
      bmr::DecodeI64(bmr::Slice(r.value), &n);
      ranked.emplace_back(n, r.key);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("after %6d mentions | trending:", (batch + 1) * kPerBatch);
    for (size_t i = 0; i < 3 && i < ranked.size(); ++i) {
      std::printf("  %s(%lld)", ranked[i].second.c_str(),
                  (long long)ranked[i].first);
    }
    std::printf("\n");
  }

  std::vector<bmr::mr::Record> final_records;
  bmr::mr::VectorEmitter<std::vector<bmr::mr::Record>> final_emitter(
      &final_records);
  if (!driver.Finalize(&final_emitter).ok()) return 1;
  std::printf("\nstream closed; %zu topics in the final output.\n",
              final_records.size());
  return 0;
}
