// Iterative evolution: chain genetic-algorithm generations by feeding
// each run's output (framed part files in the DFS) straight back in as
// the next run's input — MapReduce-as-a-loop, the usage pattern of
// Verma et al.'s "Scaling Genetic Algorithms using MapReduce" that the
// paper's GA case study comes from.
//
//   $ ./evolve [generations]     (default 6)
#include <cstdio>
#include <cstdlib>

#include "apps/genetic.h"
#include "common/serde.h"
#include "mr/engine.h"
#include "workload/generators.h"

using bmr::mr::JobResult;
using bmr::mr::JobRunner;

int main(int argc, char** argv) {
  int generations = argc > 1 ? std::atoi(argv[1]) : 6;

  auto cluster =
      bmr::mr::ClusterContext::Create(bmr::cluster::SmallCluster(4));
  bmr::workload::PopulationGenOptions gen;
  gen.population = 20000;
  gen.seed = 3;
  auto seed_files =
      bmr::workload::GeneratePopulation(cluster.get(), "/gen0", gen);
  if (!seed_files.ok()) return 1;

  JobRunner runner(cluster.get());
  std::vector<std::string> inputs = *seed_files;
  std::printf("%-12s %-14s %-14s\n", "generation", "mean_fitness",
              "best_fitness");
  for (int g = 1; g <= generations; ++g) {
    bmr::apps::AppOptions options;
    options.input_files = inputs;
    options.output_path = "/gen" + std::to_string(g);
    options.num_reducers = 4;
    options.barrierless = true;
    options.extra.SetInt("ga.window", 64);
    options.extra.SetInt("ga.seed", g);
    if (g > 1) options.extra.SetBool("ga.kv_input", true);

    JobResult result = runner.Run(bmr::apps::MakeGeneticJob(options));
    if (!result.ok()) {
      std::fprintf(stderr, "generation %d failed: %s\n", g,
                   result.status.ToString().c_str());
      return 1;
    }
    auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
    if (!output.ok()) return 1;

    double total = 0;
    int64_t best = 0;
    for (const auto& r : *output) {
      int64_t fitness = 0;
      bmr::DecodeI64(bmr::Slice(r.value), &fitness);
      total += static_cast<double>(fitness);
      best = std::max(best, fitness);
    }
    std::printf("%-12d %-14.2f %-14lld\n", g, total / output->size(),
                (long long)best);

    // Next generation reads this generation's part files directly.
    inputs = result.output_files;
  }
  std::printf("\nRandom 32-bit genomes start at mean fitness ~16 (of 32);\n"
              "tournament selection pushes the population toward the\n"
              "all-ones optimum generation over generation.\n");
  return 0;
}
