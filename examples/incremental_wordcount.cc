// Incremental (memoized) WordCount across daily batches — the paper's
// §8 future-work item made concrete: because barrier-less reducers
// keep explicit, mergeable partial results, yesterday's partials seed
// today's run and only the new day's input is mapped.
//
//   $ ./incremental_wordcount
#include <cstdio>

#include "apps/wordcount.h"
#include "core/job_session.h"
#include "mr/engine.h"
#include "workload/generators.h"

using bmr::mr::ClusterContext;
using bmr::mr::JobResult;
using bmr::mr::JobRunner;

int main() {
  auto cluster = ClusterContext::Create(bmr::cluster::SmallCluster(4));
  JobRunner runner(cluster.get());
  bmr::core::JobSession session;

  uint64_t cumulative_input = 0;
  for (int day = 1; day <= 3; ++day) {
    // A new day's worth of text arrives.
    bmr::workload::TextGenOptions gen;
    gen.total_bytes = 1 << 20;
    gen.vocabulary = 4000;
    gen.seed = 40 + day;
    auto files = bmr::workload::GenerateZipfText(
        cluster.get(), "/text/day" + std::to_string(day), gen);
    if (!files.ok()) return 1;

    bmr::apps::AppOptions options;
    options.input_files = *files;  // ONLY today's files
    options.output_path = "/counts/day" + std::to_string(day);
    options.num_reducers = 4;
    options.barrierless = true;
    bmr::mr::JobSpec spec = bmr::apps::MakeWordCountJob(options);
    spec.session = &session;  // seed from yesterday, snapshot for tomorrow

    JobResult result = runner.Run(spec);
    if (!result.ok()) {
      std::fprintf(stderr, "day %d failed: %s\n", day,
                   result.status.ToString().c_str());
      return 1;
    }
    uint64_t mapped = result.counters.Get(bmr::mr::kCtrMapInputRecords);
    cumulative_input += mapped;

    auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
    if (!output.ok()) return 1;
    int64_t total = 0;
    for (const auto& r : *output) {
      total += bmr::apps::DecodeCount(bmr::Slice(r.value));
    }
    std::printf(
        "day %d: mapped %llu new lines (cumulative %llu), output covers "
        "%zu words / %lld occurrences, %llu memoized partials carried\n",
        day, (unsigned long long)mapped,
        (unsigned long long)cumulative_input, output->size(),
        (long long)total, (unsigned long long)session.TotalPartials());
  }
  std::printf(
      "\nEach day's job read only that day's input; the output is always\n"
      "the full cumulative count (asserted against from-scratch runs by\n"
      "the test suite).  A with-barrier job cannot do this: its reduce\n"
      "state lives implicitly in the sorted stream.\n");
  return 0;
}
