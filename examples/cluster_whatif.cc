// Capacity-planning what-if on the cluster simulator: predict how much
// breaking the barrier would buy for a WordCount-shaped job on YOUR
// cluster, before touching any hardware.
//
//   $ ./cluster_whatif [input_GB] [reducers] [heterogeneity 0..0.9]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "simmr/hadoop_sim.h"
#include "simmr/profiles.h"

using bmr::TextTable;
using bmr::cluster::ApplyHeterogeneity;
using bmr::cluster::ClusterSpec;
using bmr::cluster::PaperCluster;
using bmr::simmr::SimJob;
using bmr::simmr::SimResult;
using bmr::simmr::SimulateJob;

int main(int argc, char** argv) {
  double gb = argc > 1 ? std::atof(argv[1]) : 8.0;
  int reducers = argc > 2 ? std::atoi(argv[2]) : 60;
  double spread = argc > 3 ? std::atof(argv[3]) : 0.0;

  ClusterSpec cluster = PaperCluster();
  if (spread > 0) ApplyHeterogeneity(&cluster, spread, /*seed=*/1);

  std::printf(
      "What-if: WordCount over %.1f GB, %d reducers, %d-node cluster"
      "%s\n\n",
      gb, reducers, static_cast<int>(cluster.nodes.size()),
      spread > 0 ? " (heterogeneous)" : "");

  SimJob job = bmr::simmr::WordCountSim(gb, reducers);

  job.barrierless = false;
  SimResult with = SimulateJob(cluster, job);
  job.barrierless = true;
  SimResult without = SimulateJob(cluster, job);

  TextTable table({"metric", "with barrier", "without barrier"});
  table.AddRow({"completion (s)",
                TextTable::Num(with.completion_seconds, 1),
                TextTable::Num(without.completion_seconds, 1)});
  table.AddRow({"last map done (s)", TextTable::Num(with.last_map_done, 1),
                TextTable::Num(without.last_map_done, 1)});
  table.AddRow({"mapper slack (s)", TextTable::Num(with.mapper_slack, 1),
                TextTable::Num(without.mapper_slack, 1)});
  table.AddRow({"shuffle volume (GB)",
                TextTable::Num(with.shuffle_bytes / (1 << 30), 2),
                TextTable::Num(without.shuffle_bytes / (1 << 30), 2)});
  table.Print();

  double improvement = (with.completion_seconds - without.completion_seconds) /
                       with.completion_seconds * 100;
  std::printf(
      "\npredicted improvement from breaking the barrier: %.1f%%\n"
      "rule of thumb: the win scales with the mapper slack — the time\n"
      "the with-barrier reducers sit buffering instead of reducing.\n",
      improvement);
  return 0;
}
