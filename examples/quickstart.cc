// Quickstart: WordCount on the in-process cluster, with and without
// the stage barrier.
//
//   $ ./quickstart
//
// Walks through the whole public API: build a cluster, load data into
// the DFS, describe a job, run it in both modes, and read the output.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/wordcount.h"
#include "mr/engine.h"
#include "workload/generators.h"

using bmr::mr::ClusterContext;
using bmr::mr::JobResult;
using bmr::mr::JobRunner;
using bmr::mr::Record;

int main() {
  // 1. An in-process "cluster": 4 slaves + master, small DFS blocks so
  //    even toy inputs split into several map tasks.
  auto spec = bmr::cluster::SmallCluster(/*slaves=*/4, /*map_slots=*/2,
                                         /*reduce_slots=*/2);
  spec.dfs_block_bytes = 256 << 10;
  auto cluster = ClusterContext::Create(std::move(spec));

  // 2. Some Zipf-distributed text in the DFS (stands in for the paper's
  //    Wikipedia dump).
  bmr::workload::TextGenOptions gen;
  gen.total_bytes = 2 << 20;
  gen.vocabulary = 5000;
  gen.seed = 7;
  auto files = bmr::workload::GenerateZipfText(cluster.get(), "/wiki", gen);
  if (!files.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n",
                 files.status().ToString().c_str());
    return 1;
  }

  // 3. Run WordCount both ways.  The only difference between the two
  //    programs is the `barrierless` flag — the paper's
  //    setIncrementalReduction(true).
  JobRunner runner(cluster.get());
  for (bool barrierless : {false, true}) {
    bmr::apps::AppOptions options;
    options.input_files = *files;
    options.output_path = barrierless ? "/out/nobarrier" : "/out/barrier";
    options.num_reducers = 4;
    options.barrierless = barrierless;
    JobResult result = runner.Run(bmr::apps::MakeWordCountJob(options));
    if (!result.ok()) {
      std::fprintf(stderr, "job failed: %s\n",
                   result.status.ToString().c_str());
      return 1;
    }
    std::printf("%-14s finished in %.2fs  (maps: %llu, shuffled %.1f MB, "
                "reduce saw %llu records)\n",
                barrierless ? "barrier-less" : "with-barrier",
                result.elapsed_seconds,
                (unsigned long long)result.counters.Get(
                    bmr::mr::kCtrMapTasksLaunched),
                result.counters.Get(bmr::mr::kCtrShuffleBytes) / 1048576.0,
                (unsigned long long)result.counters.Get(
                    bmr::mr::kCtrReduceInputRecords));

    if (barrierless) {
      // 4. Read the output and show the most frequent words.
      auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
      if (!output.ok()) return 1;
      std::vector<std::pair<int64_t, std::string>> ranked;
      for (const Record& r : *output) {
        ranked.emplace_back(bmr::apps::DecodeCount(bmr::Slice(r.value)),
                            r.key);
      }
      std::sort(ranked.rbegin(), ranked.rend());
      std::printf("\ntop words:\n");
      for (size_t i = 0; i < 5 && i < ranked.size(); ++i) {
        std::printf("  %-10s %lld\n", ranked[i].second.c_str(),
                    (long long)ranked[i].first);
      }
      std::printf("(%zu distinct words total)\n", ranked.size());
    }
  }
  return 0;
}
