// Monte Carlo option pricing — the Single Reducer Aggregation class
// where breaking the barrier helps the most (up to 87% in the paper).
//
//   $ ./options_pricing [iterations_per_mapper]   (default 50000)
#include <cstdio>
#include <cstdlib>

#include "apps/blackscholes.h"
#include "mr/engine.h"
#include "workload/generators.h"

using bmr::mr::ClusterContext;
using bmr::mr::JobRunner;

int main(int argc, char** argv) {
  uint64_t iterations = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

  auto cluster =
      ClusterContext::Create(bmr::cluster::SmallCluster(4, 2, 2));

  bmr::workload::BlackScholesGenOptions gen;
  gen.num_mappers = 8;
  gen.iterations_per_mapper = iterations;
  gen.seed = 11;
  auto files =
      bmr::workload::GenerateBlackScholesUnits(cluster.get(), "/bs", gen);
  if (!files.ok()) {
    std::fprintf(stderr, "%s\n", files.status().ToString().c_str());
    return 1;
  }

  // Price a slightly out-of-the-money call.
  bmr::apps::AppOptions options;
  options.input_files = *files;
  options.output_path = "/out/pricing";
  options.barrierless = true;
  options.extra.SetDouble("bs.spot", 100);
  options.extra.SetDouble("bs.strike", 105);
  options.extra.SetDouble("bs.rate", 0.05);
  options.extra.SetDouble("bs.volatility", 0.25);
  options.extra.SetDouble("bs.maturity", 0.5);

  JobRunner runner(cluster.get());
  auto result = runner.Run(bmr::apps::MakeBlackScholesJob(options));
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 result.status.ToString().c_str());
    return 1;
  }
  auto output = JobRunner::ReadAllOutput(cluster->client(0), result);
  if (!output.ok() || output->empty()) return 1;

  bmr::apps::BsSummary summary;
  if (!bmr::apps::DecodeBsSummary(bmr::Slice((*output)[0].value), &summary)) {
    return 1;
  }
  double closed = bmr::apps::BlackScholesCallPrice(100, 105, 0.05, 0.25, 0.5);
  double stderr_est =
      summary.stddev / std::sqrt(static_cast<double>(summary.count));
  std::printf("Monte Carlo call price : %.4f +- %.4f  (%lld paths, %.2fs)\n",
              summary.mean, 1.96 * stderr_est, (long long)summary.count,
              result.elapsed_seconds);
  std::printf("closed-form price      : %.4f\n", closed);
  std::printf("payoff std deviation   : %.4f\n", summary.stddev);
  std::printf("\nThe single reducer keeps only two running sums (O(1)\n"
              "memory) and folds samples as mappers stream them in — no\n"
              "barrier, no sort, no buffering of %lld records.\n",
              (long long)summary.count);
  return 0;
}
