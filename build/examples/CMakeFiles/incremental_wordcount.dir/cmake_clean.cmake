file(REMOVE_RECURSE
  "CMakeFiles/incremental_wordcount.dir/incremental_wordcount.cc.o"
  "CMakeFiles/incremental_wordcount.dir/incremental_wordcount.cc.o.d"
  "incremental_wordcount"
  "incremental_wordcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_wordcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
