# Empty compiler generated dependencies file for incremental_wordcount.
# This may be replaced when dependencies are built.
