# Empty dependencies file for log_search.
# This may be replaced when dependencies are built.
