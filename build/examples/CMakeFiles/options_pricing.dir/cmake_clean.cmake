file(REMOVE_RECURSE
  "CMakeFiles/options_pricing.dir/options_pricing.cc.o"
  "CMakeFiles/options_pricing.dir/options_pricing.cc.o.d"
  "options_pricing"
  "options_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/options_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
