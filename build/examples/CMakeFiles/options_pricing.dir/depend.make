# Empty dependencies file for options_pricing.
# This may be replaced when dependencies are built.
