file(REMOVE_RECURSE
  "CMakeFiles/trending_topics.dir/trending_topics.cc.o"
  "CMakeFiles/trending_topics.dir/trending_topics.cc.o.d"
  "trending_topics"
  "trending_topics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trending_topics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
