# Empty dependencies file for trending_topics.
# This may be replaced when dependencies are built.
