# Empty compiler generated dependencies file for evolve.
# This may be replaced when dependencies are built.
