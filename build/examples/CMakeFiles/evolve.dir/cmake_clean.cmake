file(REMOVE_RECURSE
  "CMakeFiles/evolve.dir/evolve.cc.o"
  "CMakeFiles/evolve.dir/evolve.cc.o.d"
  "evolve"
  "evolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
