# Empty dependencies file for cluster_whatif.
# This may be replaced when dependencies are built.
