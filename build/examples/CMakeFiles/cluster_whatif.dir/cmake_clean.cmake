file(REMOVE_RECURSE
  "CMakeFiles/cluster_whatif.dir/cluster_whatif.cc.o"
  "CMakeFiles/cluster_whatif.dir/cluster_whatif.cc.o.d"
  "cluster_whatif"
  "cluster_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
