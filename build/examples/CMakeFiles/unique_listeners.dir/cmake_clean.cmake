file(REMOVE_RECURSE
  "CMakeFiles/unique_listeners.dir/unique_listeners.cc.o"
  "CMakeFiles/unique_listeners.dir/unique_listeners.cc.o.d"
  "unique_listeners"
  "unique_listeners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unique_listeners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
