# Empty compiler generated dependencies file for unique_listeners.
# This may be replaced when dependencies are built.
