# Empty compiler generated dependencies file for mr_unit_test.
# This may be replaced when dependencies are built.
