file(REMOVE_RECURSE
  "CMakeFiles/mr_unit_test.dir/mr_unit_test.cc.o"
  "CMakeFiles/mr_unit_test.dir/mr_unit_test.cc.o.d"
  "mr_unit_test"
  "mr_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
