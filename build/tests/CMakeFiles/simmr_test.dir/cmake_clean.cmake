file(REMOVE_RECURSE
  "CMakeFiles/simmr_test.dir/simmr_test.cc.o"
  "CMakeFiles/simmr_test.dir/simmr_test.cc.o.d"
  "simmr_test"
  "simmr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simmr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
