# Empty compiler generated dependencies file for simmr_test.
# This may be replaced when dependencies are built.
