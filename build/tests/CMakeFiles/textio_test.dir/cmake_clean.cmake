file(REMOVE_RECURSE
  "CMakeFiles/textio_test.dir/textio_test.cc.o"
  "CMakeFiles/textio_test.dir/textio_test.cc.o.d"
  "textio_test"
  "textio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
