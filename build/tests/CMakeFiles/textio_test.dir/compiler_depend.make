# Empty compiler generated dependencies file for textio_test.
# This may be replaced when dependencies are built.
