file(REMOVE_RECURSE
  "CMakeFiles/cluster_sweep_test.dir/cluster_sweep_test.cc.o"
  "CMakeFiles/cluster_sweep_test.dir/cluster_sweep_test.cc.o.d"
  "cluster_sweep_test"
  "cluster_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
