file(REMOVE_RECURSE
  "CMakeFiles/input_test.dir/input_test.cc.o"
  "CMakeFiles/input_test.dir/input_test.cc.o.d"
  "input_test"
  "input_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/input_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
