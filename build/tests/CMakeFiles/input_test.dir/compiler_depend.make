# Empty compiler generated dependencies file for input_test.
# This may be replaced when dependencies are built.
