# Empty compiler generated dependencies file for stores_test.
# This may be replaced when dependencies are built.
