file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_classes.dir/bench_table1_classes.cc.o"
  "CMakeFiles/bench_table1_classes.dir/bench_table1_classes.cc.o.d"
  "bench_table1_classes"
  "bench_table1_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
