# Empty dependencies file for bench_fig8_reducers.
# This may be replaced when dependencies are built.
