file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_reducers.dir/bench_fig8_reducers.cc.o"
  "CMakeFiles/bench_fig8_reducers.dir/bench_fig8_reducers.cc.o.d"
  "bench_fig8_reducers"
  "bench_fig8_reducers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_reducers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
