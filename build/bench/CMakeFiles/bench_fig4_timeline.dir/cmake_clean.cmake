file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_timeline.dir/bench_fig4_timeline.cc.o"
  "CMakeFiles/bench_fig4_timeline.dir/bench_fig4_timeline.cc.o.d"
  "bench_fig4_timeline"
  "bench_fig4_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
