# Empty dependencies file for bench_fig4_timeline.
# This may be replaced when dependencies are built.
