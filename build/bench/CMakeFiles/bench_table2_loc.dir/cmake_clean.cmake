file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_loc.dir/bench_table2_loc.cc.o"
  "CMakeFiles/bench_table2_loc.dir/bench_table2_loc.cc.o.d"
  "bench_table2_loc"
  "bench_table2_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
