# Empty compiler generated dependencies file for bench_real_engine.
# This may be replaced when dependencies are built.
