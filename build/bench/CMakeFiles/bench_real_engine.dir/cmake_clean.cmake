file(REMOVE_RECURSE
  "CMakeFiles/bench_real_engine.dir/bench_real_engine.cc.o"
  "CMakeFiles/bench_real_engine.dir/bench_real_engine.cc.o.d"
  "bench_real_engine"
  "bench_real_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_real_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
