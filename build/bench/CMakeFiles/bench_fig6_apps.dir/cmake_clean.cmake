file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_apps.dir/bench_fig6_apps.cc.o"
  "CMakeFiles/bench_fig6_apps.dir/bench_fig6_apps.cc.o.d"
  "bench_fig6_apps"
  "bench_fig6_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
