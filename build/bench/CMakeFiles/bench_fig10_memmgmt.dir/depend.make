# Empty dependencies file for bench_fig10_memmgmt.
# This may be replaced when dependencies are built.
