file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_memmgmt.dir/bench_fig10_memmgmt.cc.o"
  "CMakeFiles/bench_fig10_memmgmt.dir/bench_fig10_memmgmt.cc.o.d"
  "bench_fig10_memmgmt"
  "bench_fig10_memmgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_memmgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
