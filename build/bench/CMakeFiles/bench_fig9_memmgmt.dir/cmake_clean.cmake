file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_memmgmt.dir/bench_fig9_memmgmt.cc.o"
  "CMakeFiles/bench_fig9_memmgmt.dir/bench_fig9_memmgmt.cc.o.d"
  "bench_fig9_memmgmt"
  "bench_fig9_memmgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_memmgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
