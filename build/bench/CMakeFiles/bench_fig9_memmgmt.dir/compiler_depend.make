# Empty compiler generated dependencies file for bench_fig9_memmgmt.
# This may be replaced when dependencies are built.
