file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_heap.dir/bench_fig5_heap.cc.o"
  "CMakeFiles/bench_fig5_heap.dir/bench_fig5_heap.cc.o.d"
  "bench_fig5_heap"
  "bench_fig5_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
