file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_boxplot.dir/bench_fig7_boxplot.cc.o"
  "CMakeFiles/bench_fig7_boxplot.dir/bench_fig7_boxplot.cc.o.d"
  "bench_fig7_boxplot"
  "bench_fig7_boxplot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_boxplot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
