# Empty dependencies file for bench_fig7_boxplot.
# This may be replaced when dependencies are built.
