# Empty compiler generated dependencies file for bmr_net.
# This may be replaced when dependencies are built.
