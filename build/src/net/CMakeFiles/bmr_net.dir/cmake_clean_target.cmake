file(REMOVE_RECURSE
  "libbmr_net.a"
)
