file(REMOVE_RECURSE
  "CMakeFiles/bmr_net.dir/rpc.cc.o"
  "CMakeFiles/bmr_net.dir/rpc.cc.o.d"
  "libbmr_net.a"
  "libbmr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
