file(REMOVE_RECURSE
  "libbmr_simmr.a"
)
