file(REMOVE_RECURSE
  "CMakeFiles/bmr_simmr.dir/calibrate.cc.o"
  "CMakeFiles/bmr_simmr.dir/calibrate.cc.o.d"
  "CMakeFiles/bmr_simmr.dir/hadoop_sim.cc.o"
  "CMakeFiles/bmr_simmr.dir/hadoop_sim.cc.o.d"
  "CMakeFiles/bmr_simmr.dir/profiles.cc.o"
  "CMakeFiles/bmr_simmr.dir/profiles.cc.o.d"
  "libbmr_simmr.a"
  "libbmr_simmr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmr_simmr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
