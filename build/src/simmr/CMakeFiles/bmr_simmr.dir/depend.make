# Empty dependencies file for bmr_simmr.
# This may be replaced when dependencies are built.
