file(REMOVE_RECURSE
  "CMakeFiles/bmr_sim.dir/event_queue.cc.o"
  "CMakeFiles/bmr_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/bmr_sim.dir/flownet.cc.o"
  "CMakeFiles/bmr_sim.dir/flownet.cc.o.d"
  "CMakeFiles/bmr_sim.dir/resources.cc.o"
  "CMakeFiles/bmr_sim.dir/resources.cc.o.d"
  "libbmr_sim.a"
  "libbmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
