file(REMOVE_RECURSE
  "libbmr_sim.a"
)
