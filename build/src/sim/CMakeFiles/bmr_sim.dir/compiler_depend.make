# Empty compiler generated dependencies file for bmr_sim.
# This may be replaced when dependencies are built.
