file(REMOVE_RECURSE
  "CMakeFiles/bmr_workload.dir/generators.cc.o"
  "CMakeFiles/bmr_workload.dir/generators.cc.o.d"
  "libbmr_workload.a"
  "libbmr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
