
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generators.cc" "src/workload/CMakeFiles/bmr_workload.dir/generators.cc.o" "gcc" "src/workload/CMakeFiles/bmr_workload.dir/generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/bmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/bmr_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/bmr_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bmr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/bmr_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
