file(REMOVE_RECURSE
  "libbmr_workload.a"
)
