# Empty dependencies file for bmr_workload.
# This may be replaced when dependencies are built.
