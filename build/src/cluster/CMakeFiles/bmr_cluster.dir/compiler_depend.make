# Empty compiler generated dependencies file for bmr_cluster.
# This may be replaced when dependencies are built.
