file(REMOVE_RECURSE
  "libbmr_cluster.a"
)
