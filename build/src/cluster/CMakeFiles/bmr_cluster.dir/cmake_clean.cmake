file(REMOVE_RECURSE
  "CMakeFiles/bmr_cluster.dir/cluster.cc.o"
  "CMakeFiles/bmr_cluster.dir/cluster.cc.o.d"
  "libbmr_cluster.a"
  "libbmr_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmr_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
