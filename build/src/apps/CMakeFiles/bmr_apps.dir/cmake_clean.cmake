file(REMOVE_RECURSE
  "CMakeFiles/bmr_apps.dir/blackscholes.cc.o"
  "CMakeFiles/bmr_apps.dir/blackscholes.cc.o.d"
  "CMakeFiles/bmr_apps.dir/genetic.cc.o"
  "CMakeFiles/bmr_apps.dir/genetic.cc.o.d"
  "CMakeFiles/bmr_apps.dir/grep.cc.o"
  "CMakeFiles/bmr_apps.dir/grep.cc.o.d"
  "CMakeFiles/bmr_apps.dir/knn.cc.o"
  "CMakeFiles/bmr_apps.dir/knn.cc.o.d"
  "CMakeFiles/bmr_apps.dir/lastfm.cc.o"
  "CMakeFiles/bmr_apps.dir/lastfm.cc.o.d"
  "CMakeFiles/bmr_apps.dir/registry.cc.o"
  "CMakeFiles/bmr_apps.dir/registry.cc.o.d"
  "CMakeFiles/bmr_apps.dir/sort.cc.o"
  "CMakeFiles/bmr_apps.dir/sort.cc.o.d"
  "CMakeFiles/bmr_apps.dir/wordcount.cc.o"
  "CMakeFiles/bmr_apps.dir/wordcount.cc.o.d"
  "libbmr_apps.a"
  "libbmr_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmr_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
