
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/blackscholes.cc" "src/apps/CMakeFiles/bmr_apps.dir/blackscholes.cc.o" "gcc" "src/apps/CMakeFiles/bmr_apps.dir/blackscholes.cc.o.d"
  "/root/repo/src/apps/genetic.cc" "src/apps/CMakeFiles/bmr_apps.dir/genetic.cc.o" "gcc" "src/apps/CMakeFiles/bmr_apps.dir/genetic.cc.o.d"
  "/root/repo/src/apps/grep.cc" "src/apps/CMakeFiles/bmr_apps.dir/grep.cc.o" "gcc" "src/apps/CMakeFiles/bmr_apps.dir/grep.cc.o.d"
  "/root/repo/src/apps/knn.cc" "src/apps/CMakeFiles/bmr_apps.dir/knn.cc.o" "gcc" "src/apps/CMakeFiles/bmr_apps.dir/knn.cc.o.d"
  "/root/repo/src/apps/lastfm.cc" "src/apps/CMakeFiles/bmr_apps.dir/lastfm.cc.o" "gcc" "src/apps/CMakeFiles/bmr_apps.dir/lastfm.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/bmr_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/bmr_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/sort.cc" "src/apps/CMakeFiles/bmr_apps.dir/sort.cc.o" "gcc" "src/apps/CMakeFiles/bmr_apps.dir/sort.cc.o.d"
  "/root/repo/src/apps/wordcount.cc" "src/apps/CMakeFiles/bmr_apps.dir/wordcount.cc.o" "gcc" "src/apps/CMakeFiles/bmr_apps.dir/wordcount.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mr/CMakeFiles/bmr_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/bmr_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/bmr_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bmr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/bmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
