# Empty compiler generated dependencies file for bmr_apps.
# This may be replaced when dependencies are built.
