file(REMOVE_RECURSE
  "libbmr_apps.a"
)
