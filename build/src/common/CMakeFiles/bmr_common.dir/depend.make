# Empty dependencies file for bmr_common.
# This may be replaced when dependencies are built.
