file(REMOVE_RECURSE
  "CMakeFiles/bmr_common.dir/logging.cc.o"
  "CMakeFiles/bmr_common.dir/logging.cc.o.d"
  "CMakeFiles/bmr_common.dir/rng.cc.o"
  "CMakeFiles/bmr_common.dir/rng.cc.o.d"
  "CMakeFiles/bmr_common.dir/serde.cc.o"
  "CMakeFiles/bmr_common.dir/serde.cc.o.d"
  "CMakeFiles/bmr_common.dir/status.cc.o"
  "CMakeFiles/bmr_common.dir/status.cc.o.d"
  "CMakeFiles/bmr_common.dir/table.cc.o"
  "CMakeFiles/bmr_common.dir/table.cc.o.d"
  "libbmr_common.a"
  "libbmr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
