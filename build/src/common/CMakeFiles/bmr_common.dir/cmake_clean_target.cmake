file(REMOVE_RECURSE
  "libbmr_common.a"
)
