file(REMOVE_RECURSE
  "libbmr_dfs.a"
)
