file(REMOVE_RECURSE
  "CMakeFiles/bmr_dfs.dir/dfs.cc.o"
  "CMakeFiles/bmr_dfs.dir/dfs.cc.o.d"
  "libbmr_dfs.a"
  "libbmr_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmr_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
