# Empty dependencies file for bmr_dfs.
# This may be replaced when dependencies are built.
