file(REMOVE_RECURSE
  "CMakeFiles/bmr_mr.dir/engine.cc.o"
  "CMakeFiles/bmr_mr.dir/engine.cc.o.d"
  "CMakeFiles/bmr_mr.dir/input.cc.o"
  "CMakeFiles/bmr_mr.dir/input.cc.o.d"
  "CMakeFiles/bmr_mr.dir/map_output.cc.o"
  "CMakeFiles/bmr_mr.dir/map_output.cc.o.d"
  "CMakeFiles/bmr_mr.dir/shuffle.cc.o"
  "CMakeFiles/bmr_mr.dir/shuffle.cc.o.d"
  "CMakeFiles/bmr_mr.dir/textio.cc.o"
  "CMakeFiles/bmr_mr.dir/textio.cc.o.d"
  "CMakeFiles/bmr_mr.dir/timeline.cc.o"
  "CMakeFiles/bmr_mr.dir/timeline.cc.o.d"
  "libbmr_mr.a"
  "libbmr_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmr_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
