# Empty compiler generated dependencies file for bmr_mr.
# This may be replaced when dependencies are built.
