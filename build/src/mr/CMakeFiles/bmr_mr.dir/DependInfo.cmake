
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mr/engine.cc" "src/mr/CMakeFiles/bmr_mr.dir/engine.cc.o" "gcc" "src/mr/CMakeFiles/bmr_mr.dir/engine.cc.o.d"
  "/root/repo/src/mr/input.cc" "src/mr/CMakeFiles/bmr_mr.dir/input.cc.o" "gcc" "src/mr/CMakeFiles/bmr_mr.dir/input.cc.o.d"
  "/root/repo/src/mr/map_output.cc" "src/mr/CMakeFiles/bmr_mr.dir/map_output.cc.o" "gcc" "src/mr/CMakeFiles/bmr_mr.dir/map_output.cc.o.d"
  "/root/repo/src/mr/shuffle.cc" "src/mr/CMakeFiles/bmr_mr.dir/shuffle.cc.o" "gcc" "src/mr/CMakeFiles/bmr_mr.dir/shuffle.cc.o.d"
  "/root/repo/src/mr/textio.cc" "src/mr/CMakeFiles/bmr_mr.dir/textio.cc.o" "gcc" "src/mr/CMakeFiles/bmr_mr.dir/textio.cc.o.d"
  "/root/repo/src/mr/timeline.cc" "src/mr/CMakeFiles/bmr_mr.dir/timeline.cc.o" "gcc" "src/mr/CMakeFiles/bmr_mr.dir/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/bmr_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bmr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bmr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/bmr_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/bmr_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
