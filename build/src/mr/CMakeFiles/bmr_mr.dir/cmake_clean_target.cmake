file(REMOVE_RECURSE
  "libbmr_mr.a"
)
