file(REMOVE_RECURSE
  "CMakeFiles/bmr_concurrency.dir/thread_pool.cc.o"
  "CMakeFiles/bmr_concurrency.dir/thread_pool.cc.o.d"
  "libbmr_concurrency.a"
  "libbmr_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmr_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
