file(REMOVE_RECURSE
  "libbmr_concurrency.a"
)
