# Empty dependencies file for bmr_concurrency.
# This may be replaced when dependencies are built.
