file(REMOVE_RECURSE
  "libbmr_core.a"
)
