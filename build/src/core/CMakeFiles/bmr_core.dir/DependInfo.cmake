
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/barrierless_driver.cc" "src/core/CMakeFiles/bmr_core.dir/barrierless_driver.cc.o" "gcc" "src/core/CMakeFiles/bmr_core.dir/barrierless_driver.cc.o.d"
  "/root/repo/src/core/inmemory_store.cc" "src/core/CMakeFiles/bmr_core.dir/inmemory_store.cc.o" "gcc" "src/core/CMakeFiles/bmr_core.dir/inmemory_store.cc.o.d"
  "/root/repo/src/core/job_session.cc" "src/core/CMakeFiles/bmr_core.dir/job_session.cc.o" "gcc" "src/core/CMakeFiles/bmr_core.dir/job_session.cc.o.d"
  "/root/repo/src/core/kvstore.cc" "src/core/CMakeFiles/bmr_core.dir/kvstore.cc.o" "gcc" "src/core/CMakeFiles/bmr_core.dir/kvstore.cc.o.d"
  "/root/repo/src/core/scratch_dir.cc" "src/core/CMakeFiles/bmr_core.dir/scratch_dir.cc.o" "gcc" "src/core/CMakeFiles/bmr_core.dir/scratch_dir.cc.o.d"
  "/root/repo/src/core/spill_file.cc" "src/core/CMakeFiles/bmr_core.dir/spill_file.cc.o" "gcc" "src/core/CMakeFiles/bmr_core.dir/spill_file.cc.o.d"
  "/root/repo/src/core/spill_merge_store.cc" "src/core/CMakeFiles/bmr_core.dir/spill_merge_store.cc.o" "gcc" "src/core/CMakeFiles/bmr_core.dir/spill_merge_store.cc.o.d"
  "/root/repo/src/core/store_factory.cc" "src/core/CMakeFiles/bmr_core.dir/store_factory.cc.o" "gcc" "src/core/CMakeFiles/bmr_core.dir/store_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
