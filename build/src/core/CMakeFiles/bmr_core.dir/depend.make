# Empty dependencies file for bmr_core.
# This may be replaced when dependencies are built.
