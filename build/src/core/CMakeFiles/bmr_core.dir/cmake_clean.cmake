file(REMOVE_RECURSE
  "CMakeFiles/bmr_core.dir/barrierless_driver.cc.o"
  "CMakeFiles/bmr_core.dir/barrierless_driver.cc.o.d"
  "CMakeFiles/bmr_core.dir/inmemory_store.cc.o"
  "CMakeFiles/bmr_core.dir/inmemory_store.cc.o.d"
  "CMakeFiles/bmr_core.dir/job_session.cc.o"
  "CMakeFiles/bmr_core.dir/job_session.cc.o.d"
  "CMakeFiles/bmr_core.dir/kvstore.cc.o"
  "CMakeFiles/bmr_core.dir/kvstore.cc.o.d"
  "CMakeFiles/bmr_core.dir/scratch_dir.cc.o"
  "CMakeFiles/bmr_core.dir/scratch_dir.cc.o.d"
  "CMakeFiles/bmr_core.dir/spill_file.cc.o"
  "CMakeFiles/bmr_core.dir/spill_file.cc.o.d"
  "CMakeFiles/bmr_core.dir/spill_merge_store.cc.o"
  "CMakeFiles/bmr_core.dir/spill_merge_store.cc.o.d"
  "CMakeFiles/bmr_core.dir/store_factory.cc.o"
  "CMakeFiles/bmr_core.dir/store_factory.cc.o.d"
  "libbmr_core.a"
  "libbmr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
